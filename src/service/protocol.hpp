// tokend's compact binary wire protocol (v2, with v1 interop).
//
// One request or response per transport payload, serialized with
// util::BinaryWriter/BinaryReader (fixed little-endian layout):
//
//   u8  version (1 or 2; encoders emit kProtocolVersion unless told v1)
//   u8  message type (requests 1..6; responses are request | 0x80;
//       0xFF is the typed ErrorResponse, response-only)
//   u64 request id (echoed verbatim in the response for correlation)
//   ... type-specific body
//
// v2 adds, relative to v1:
//   - a u32 namespace id on acquire/refund/query/batch-acquire requests,
//     placed right after the request id (v1 frames implicitly target
//     namespace 0, so a v1 frame is exactly a v2 frame about the default
//     namespace — the compat rule the tests pin down);
//   - admin messages: ConfigureNamespace creates or resets a namespace
//     with its own core::StrategyConfig, Δ, initial balance and TTL at
//     runtime; NamespaceInfo describes one;
//   - a typed ErrorResponse (code + echoed id), so the server can answer
//     decodable-header/bad-body frames, unknown namespaces and invalid
//     configs instead of silently dropping them.
//
// Decoding is strict: unknown version, unknown type (for that version),
// negative token counts, oversized batches, out-of-range enum/bool bytes,
// truncated bodies and trailing bytes all throw util::IoError — a
// malformed frame can never partially apply.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "service/account_table.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace toka::service::protocol {

/// The version encoders emit by default.
inline constexpr std::uint8_t kProtocolVersion = 2;
/// The oldest version decoders still accept.
inline constexpr std::uint8_t kProtocolVersionV1 = 1;

/// Upper bound on ops per batch frame; a decoded count above this is
/// rejected before any allocation happens.
inline constexpr std::size_t kMaxBatchOps = 1 << 16;

enum class MsgType : std::uint8_t {
  kAcquire = 1,
  kRefund = 2,
  kQuery = 3,
  kBatchAcquire = 4,
  kConfigureNamespace = 5,  ///< v2-only (admin)
  kNamespaceInfo = 6,       ///< v2-only (admin)
  kError = 0x7F,            ///< v2-only; exists only as a response
};

/// Bit set on a request's type byte to form its response's type byte.
inline constexpr std::uint8_t kResponseBit = 0x80;

/// Typed failure causes carried by ErrorResponse frames.
enum class ErrorCode : std::uint8_t {
  kMalformedBody = 1,     ///< header decoded, body did not
  kUnknownNamespace = 2,  ///< data op on a namespace that does not exist
  kInvalidConfig = 3,     ///< ConfigureNamespace with a rejected policy
};

/// Short stable identifier, e.g. "unknown-namespace" (for logs and errors).
const char* to_string(ErrorCode code);

struct AcquireRequest {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  Tokens tokens = 0;
  NamespaceId ns = kDefaultNamespace;  ///< appended so v1 positional inits hold
  friend bool operator==(const AcquireRequest&, const AcquireRequest&) = default;
};

struct AcquireResponse {
  std::uint64_t id = 0;
  Tokens granted = 0;
  Tokens balance = 0;
  friend bool operator==(const AcquireResponse&, const AcquireResponse&) = default;
};

struct RefundRequest {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  Tokens tokens = 0;
  NamespaceId ns = kDefaultNamespace;
  friend bool operator==(const RefundRequest&, const RefundRequest&) = default;
};

struct RefundResponse {
  std::uint64_t id = 0;
  Tokens accepted = 0;
  Tokens balance = 0;
  friend bool operator==(const RefundResponse&, const RefundResponse&) = default;
};

struct QueryRequest {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  NamespaceId ns = kDefaultNamespace;
  friend bool operator==(const QueryRequest&, const QueryRequest&) = default;
};

struct QueryResponse {
  std::uint64_t id = 0;
  Tokens balance = 0;
  bool exists = false;
  friend bool operator==(const QueryResponse&, const QueryResponse&) = default;
};

struct BatchAcquireRequest {
  std::uint64_t id = 0;
  std::vector<AcquireOp> ops;
  NamespaceId ns = kDefaultNamespace;
  friend bool operator==(const BatchAcquireRequest&,
                         const BatchAcquireRequest&) = default;
};

struct BatchAcquireResponse {
  std::uint64_t id = 0;
  std::vector<AcquireResult> results;
  friend bool operator==(const BatchAcquireResponse&,
                         const BatchAcquireResponse&) = default;
};

struct ConfigureNamespaceRequest {
  std::uint64_t id = 0;
  NamespaceId ns = kDefaultNamespace;
  NamespaceConfig config;
  friend bool operator==(const ConfigureNamespaceRequest&,
                         const ConfigureNamespaceRequest&) = default;
};

struct ConfigureNamespaceResponse {
  std::uint64_t id = 0;
  bool created = false;  ///< false: existed before and was reset
  Tokens capacity = 0;   ///< resolved effective balance cap
  friend bool operator==(const ConfigureNamespaceResponse&,
                         const ConfigureNamespaceResponse&) = default;
};

struct NamespaceInfoRequest {
  std::uint64_t id = 0;
  NamespaceId ns = kDefaultNamespace;
  friend bool operator==(const NamespaceInfoRequest&,
                         const NamespaceInfoRequest&) = default;
};

struct NamespaceInfoResponse {
  std::uint64_t id = 0;
  bool exists = false;
  NamespaceConfig config;       ///< meaningful only when exists
  Tokens capacity = 0;          ///< meaningful only when exists
  std::uint64_t accounts = 0;   ///< meaningful only when exists
  friend bool operator==(const NamespaceInfoResponse&,
                         const NamespaceInfoResponse&) = default;
};

struct ErrorResponse {
  std::uint64_t id = 0;
  ErrorCode code = ErrorCode::kMalformedBody;
  friend bool operator==(const ErrorResponse&, const ErrorResponse&) = default;
};

using Request =
    std::variant<AcquireRequest, RefundRequest, QueryRequest,
                 BatchAcquireRequest, ConfigureNamespaceRequest,
                 NamespaceInfoRequest>;
using Response =
    std::variant<AcquireResponse, RefundResponse, QueryResponse,
                 BatchAcquireResponse, ConfigureNamespaceResponse,
                 NamespaceInfoResponse, ErrorResponse>;

// Per-type encoders emit the current version (v2).
std::vector<std::byte> encode(const AcquireRequest& m);
std::vector<std::byte> encode(const AcquireResponse& m);
std::vector<std::byte> encode(const RefundRequest& m);
std::vector<std::byte> encode(const RefundResponse& m);
std::vector<std::byte> encode(const QueryRequest& m);
std::vector<std::byte> encode(const QueryResponse& m);
std::vector<std::byte> encode(const BatchAcquireRequest& m);
std::vector<std::byte> encode(const BatchAcquireResponse& m);
std::vector<std::byte> encode(const ConfigureNamespaceRequest& m);
std::vector<std::byte> encode(const ConfigureNamespaceResponse& m);
std::vector<std::byte> encode(const NamespaceInfoRequest& m);
std::vector<std::byte> encode(const NamespaceInfoResponse& m);
std::vector<std::byte> encode(const ErrorResponse& m);

/// Version-explicit encoders (the server answers a request with the
/// request's own version so v1 clients keep decoding). Version 1 rejects
/// v2-only messages and non-default namespaces with util::InvariantError.
std::vector<std::byte> encode(const Request& m,
                              std::uint8_t version = kProtocolVersion);
std::vector<std::byte> encode(const Response& m,
                              std::uint8_t version = kProtocolVersion);

/// Parses a request frame (v1 or v2); throws util::IoError on any
/// malformation. The overload with `version_out` also reports which
/// protocol version the frame used, so the server can answer in kind.
Request decode_request(std::span<const std::byte> payload);
Request decode_request(std::span<const std::byte> payload,
                       std::uint8_t& version_out);

/// Parses a response frame (v1 or v2); throws util::IoError on any
/// malformation.
Response decode_response(std::span<const std::byte> payload);

/// The leading (version, type, id) triple of a frame.
struct FrameHeader {
  std::uint8_t version = 0;
  MsgType type = MsgType::kAcquire;
  bool is_response = false;
  std::uint64_t id = 0;
};

/// Parses just the header: nullopt unless the frame is long enough, the
/// version is supported and the type byte is defined for that version.
/// The server uses this to split undecodable frames into "valid header,
/// bad body" (answered with ErrorResponse{kMalformedBody}) and garbage
/// (dropped and counted as malformed).
std::optional<FrameHeader> try_parse_header(
    std::span<const std::byte> payload);

/// The request id of either frame kind (for correlation/logging).
std::uint64_t request_id(const Request& m);
std::uint64_t request_id(const Response& m);

/// The namespace a request targets (admin requests included).
NamespaceId namespace_of(const Request& m);

/// Thrown by the client when the server answers with a typed
/// ErrorResponse. Derives from util::IoError so pre-v2 handlers that
/// caught IoError keep working; `code()` carries the taxonomy.
class RpcError : public util::IoError {
 public:
  RpcError(ErrorCode code, const std::string& what)
      : util::IoError(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace toka::service::protocol

namespace toka::service {
/// Positional result equality, used by protocol round-trip tests.
inline bool operator==(const AcquireOp& a, const AcquireOp& b) {
  return a.key == b.key && a.tokens == b.tokens;
}
inline bool operator==(const AcquireResult& a, const AcquireResult& b) {
  return a.granted == b.granted && a.balance == b.balance;
}
}  // namespace toka::service
