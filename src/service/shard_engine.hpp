// The shard-per-thread data plane: worker threads that own AccountTable
// shards outright, fed decoded ops through bounded MPSC queues.
//
// In the striped-lock plane every request thread locks its way into the
// table; here the relationship is inverted: shard s belongs to worker
// (s mod workers), nobody else touches it, and the table runs in
// exclusive_shards mode (ServiceConfig::exclusive_shards — the per-shard
// mutex compiles down to a no-op guard). IO threads decode a request into a
// ShardOp, post it to the owner's queue and move on; the worker drains its
// queue in batches, coalesces consecutive acquires into one vectorized
// acquire_batch call (the coarse clock is read once per shard visit and the
// whole run settles against that read), executes, and fires each op's
// completion callback — which, on the server, encodes and sends the reply
// from the worker thread, where the event loop's reply corking batches it.
//
// Because the worker replays exactly the code the locked table runs (the
// ShardGuard is the only difference), grant decisions, RNG draws, stats and
// §3.4 audit traces are byte-identical between the two planes.
//
// Admin operations (stats sweeps, namespace reconfiguration, handoff
// extraction...) need the whole table at once. They run under quiesced():
// a stop-the-world protocol that parks every worker at a drain boundary,
// runs the sweep with the table exclusively owned, and resumes the workers.
// Parks are bounded by one drain batch, so a quiesce costs microseconds —
// admin traffic is rare by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "service/account_table.hpp"
#include "util/error.hpp"
#include "util/mpsc_queue.hpp"
#include "util/types.hpp"

namespace toka::service {

/// One decoded data operation in flight to its shard's owner worker.
/// Completions are raw function pointers plus a context — no allocation or
/// type erasure on the per-op path.
struct ShardOp {
  enum class Kind : std::uint8_t {
    kAcquire = 0,
    kRefund = 1,
    kQuery = 2,
    kBatchGroup = 3,  ///< internal: one worker's slice of an EngineBatch
  };

  Kind kind = Kind::kAcquire;
  NamespaceId ns = kDefaultNamespace;
  std::uint64_t key = 0;  ///< account key; group index for kBatchGroup
  Tokens tokens = 0;

  // Outputs, written by the worker before the completion runs:
  //   kAcquire: out_a = granted,  out_b = balance
  //   kRefund:  out_a = accepted, out_b = balance
  //   kQuery:   out_a = balance,  out_b = exists (0/1)
  Tokens out_a = 0;
  Tokens out_b = 0;
  /// false: the op was rejected before touching an account (unknown
  /// namespace or invalid arguments — util::InvariantError).
  bool ok = true;
  /// kAcquire output: the grant spent fresh (just-settled) tokens.
  bool out_fresh = false;

  // Trace fields, set by the submitter when the request carries a trace
  // context. An untraced op costs the worker exactly one branch: no clock
  // reads, no recording.
  bool traced = false;
  bool trace_sampled = false;     ///< the context's sampled flag
  std::uint64_t trace_id = 0;
  std::int64_t t_submit_us = 0;   ///< obs::Tracer::now_us() at submit

  using Completion = void (*)(ShardOp&, void*);
  Completion done = nullptr;  ///< runs on the worker thread; may be null
  void* ctx = nullptr;
};

/// A batch of acquires fanned out across owner workers. `results` is
/// positionally aligned with the submitted op order; the completion fires
/// on whichever worker finishes last.
struct EngineBatch {
  NamespaceId ns = kDefaultNamespace;
  std::vector<AcquireOp> ops;             ///< regrouped, contiguous per worker
  std::vector<std::uint32_t> original;    ///< ops[i]'s position in the submit
  std::vector<AcquireResult> results;     ///< by original position

  using Completion = void (*)(EngineBatch&, void*);
  Completion done = nullptr;
  void* ctx = nullptr;

  struct Group {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<Group> groups;
  std::atomic<std::uint32_t> remaining{0};
};

struct ShardEngineOptions {
  /// Worker thread count; 0 = one per hardware thread, capped at the
  /// table's shard count.
  std::size_t workers = 0;
  /// Per-worker op queue capacity (rounded up to a power of two). A full
  /// queue fails try_submit — the server's typed-overload signal. Sized so
  /// a closed-loop client fleet fits: completions must never block pushing
  /// into a sibling worker's full queue.
  std::size_t queue_capacity = 16 * 1024;
  /// When set, per-worker queue-depth gauges are exported (the signal the
  /// adaptive admission valve wants; see ROADMAP item 5).
  obs::Registry* registry = nullptr;
  /// When set, traced ops get queue-wait and execute spans recorded on the
  /// worker (with the §3.4 decision: bank / fresh / denied / refund).
  obs::Tracer* tracer = nullptr;
  /// Drain-boundary hook: runs on worker `w` after each non-empty drain
  /// batch has executed (and its completions have fired). The cluster
  /// replication layer hangs its delta capture here — one flush per batch,
  /// not one per op. The callback runs on the worker thread and may touch
  /// exactly that worker's shards.
  std::function<void(std::size_t w)> on_drain;
};

class ShardEngine {
 public:
  /// The table must be built with ServiceConfig::exclusive_shards = true
  /// and must not be touched directly while the engine runs (use
  /// quiesced() for admin sweeps). Starts the workers immediately.
  explicit ShardEngine(AccountTable& table, ShardEngineOptions options = {});

  /// Drains queued ops, then stops and joins the workers. Producers must
  /// have stopped submitting. After destruction the table is single-owner
  /// again and may be accessed directly.
  ~ShardEngine();

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  AccountTable& table() { return *table_; }
  std::size_t worker_count() const { return workers_.size(); }

  /// The worker owning (ns, key)'s shard — stable for the engine's life.
  std::size_t worker_of(NamespaceId ns, std::uint64_t key) const {
    return table_->shard_of(ns, key) % workers_.size();
  }

  /// Posts `op` to its owner worker. Returns false when the owner's queue
  /// is full (the caller sheds — nothing was enqueued). Never blocks.
  bool try_submit(ShardOp op) {
    return workers_[worker_of(op.ns, op.key)]->queue.try_push(std::move(op));
  }

  /// Blocking submit: spins/yields until the owner's queue has room.
  /// Bootstrap and closed-loop benchmark use only — never call from a
  /// worker completion (two full queues pushing at each other deadlock).
  void submit(ShardOp op) {
    workers_[worker_of(op.ns, op.key)]->queue.push(std::move(op));
  }

  /// Fans `ops` out to their owner workers as one EngineBatch; `done`
  /// fires once every group has executed, with results positionally
  /// aligned to `ops`. Returns false — shedding the whole batch, nothing
  /// enqueued — when a target queue lacks headroom for its group. With a
  /// non-zero `trace_id` (and a tracer on the engine), every per-worker
  /// group records one queue-wait + one execute span under that id — the
  /// batch costs one clock read at submit, not one per op.
  bool submit_batch(NamespaceId ns, std::vector<AcquireOp> ops,
                    EngineBatch::Completion done, void* ctx,
                    std::uint64_t trace_id = 0, bool trace_sampled = false);

  /// Runs `fn` with every worker parked at a drain boundary: the table is
  /// exclusively owned for the duration, so whole-table admin sweeps
  /// (stats, configure_namespace, extract_if, audits...) are safe in
  /// exclusive_shards mode. Serialized across callers; returns fn's
  /// result. Must not be called from a worker completion (checked).
  template <typename F>
  decltype(auto) quiesced(F&& fn) {
    QuiesceScope scope(*this);
    return std::forward<F>(fn)();
  }

  /// Waits until every queue is empty and every in-flight op has
  /// completed. Producers must have stopped submitting first.
  void drain();

  /// Installs (or clears) the drain-boundary hook after construction —
  /// the cluster layer is built around a running engine. Safe while the
  /// workers run: the swap happens under quiesced(), so no worker can be
  /// mid-drain when the callback changes.
  void set_drain_hook(std::function<void(std::size_t w)> hook) {
    quiesced([&] { on_drain_ = std::move(hook); });
  }

  /// Approximate depth of worker `w`'s op queue.
  std::size_t queue_depth(std::size_t w) const {
    return workers_[w]->queue.size();
  }

  /// Largest per-worker queue depth right now (approximate).
  std::size_t queue_depth_max() const;

 private:
  struct alignas(64) Worker {
    explicit Worker(std::size_t capacity) : queue(capacity) {}
    util::MpscQueue<ShardOp> queue;
    TimeUs next_evict_us = 0;
    std::thread thread;
  };

  class QuiesceScope {
   public:
    explicit QuiesceScope(ShardEngine& engine) : engine_(&engine) {
      engine_->begin_quiesce();
    }
    ~QuiesceScope() { engine_->end_quiesce(); }
    QuiesceScope(const QuiesceScope&) = delete;
    QuiesceScope& operator=(const QuiesceScope&) = delete;

   private:
    ShardEngine* engine_;
  };

  void worker_loop(std::size_t w);
  void execute(std::vector<ShardOp>& ops, std::vector<AcquireOp>& run,
               std::int64_t t_pop_us);
  void run_batch_group(ShardOp& op, std::int64_t t_pop_us);
  void record_op_spans(ShardOp& op, std::int64_t t_pop_us);
  void complete(ShardOp& op, std::int64_t t_pop_us) {
    if (tracer_ != nullptr && op.traced) record_op_spans(op, t_pop_us);
    if (op.done != nullptr) op.done(op, op.ctx);
  }
  void maybe_evict(Worker& me, std::size_t w);
  void park();
  void begin_quiesce();
  void end_quiesce();
  void register_metrics(obs::Registry& registry);

  AccountTable* table_;
  std::vector<std::unique_ptr<Worker>> workers_;
  obs::Registry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::function<void(std::size_t)> on_drain_;
  std::vector<std::string> metric_names_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> park_requested_{false};
  std::mutex admin_mu_;  ///< serializes quiesced() callers
  std::mutex park_mu_;
  std::condition_variable park_cv_;    ///< workers -> quiescer: all parked
  std::condition_variable resume_cv_;  ///< quiescer -> workers: go
  std::size_t parked_ = 0;
};

}  // namespace toka::service
