// Client library for tokend: an asynchronous pipelined core with
// synchronous wrappers, over one runtime::Transport endpoint.
//
// Every call gets a fresh request id and a slot in a completion registry;
// any number of calls can be in flight on the one endpoint at once
// (pipelining), from any number of application threads. Responses arriving
// on the transport's receive thread are correlated by id and complete the
// call — as a std::future, or by invoking the caller's completion callback
// on the receive thread. Per-call deadlines are swept by a hashed timeout
// wheel (a background thread ticking at ~timeout/8): an expired call's
// slot is reclaimed and its future is rejected with util::IoError; a reply
// straggling in afterwards finds no slot and is dropped without touching
// dead state.
//
// The synchronous methods are thin wrappers — acquire(...) is exactly
// acquire_async(...).get() — so pre-async call sites compile and behave
// unchanged (a lost frame still surfaces as util::IoError after the
// timeout, not a hang). A server-side failure surfaces as
// protocol::RpcError (which IS-A util::IoError) carrying the typed code,
// and a cluster redirect as protocol::RedirectError.
//
// Peer death is fail-fast: when the transport observes the connection to
// the server close or fail (TCP EOF, refused connect), every in-flight
// call is rejected immediately with util::IoError("... connection
// closed"), instead of each ripening into its own timeout — the cluster
// client's re-routing logic depends on this. The per-call deadline stays
// as the fallback for fabrics that cannot observe peer death.
//
// Overload is honored client-side: when the server sheds a call with
// ErrorCode::kOverloaded, the call fails with protocol::OverloadedError
// (IS-A RpcError) and the client opens a backoff window of the server's
// retry-after hint. Data ops issued inside the window fail immediately
// with OverloadedError *without touching the wire* — the flash crowd stops
// hammering a server that already said no, which is what lets it drain.
// Admin, cluster and stats calls are never suppressed (an operator must be
// able to inspect and reconfigure an overloaded server).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/protocol.hpp"
#include "util/types.hpp"

namespace toka::obs {
class Tracer;
}

namespace toka::service {

/// Outcome of pushing a membership map to one node.
struct ApplyMapResult {
  bool accepted = false;       ///< false: the node already has this epoch+
  std::uint64_t epoch = 0;     ///< the node's map epoch after the call
  std::uint64_t handoffs = 0;  ///< accounts the node started moving away
};

class Client {
 public:
  /// Completion callbacks run on the transport's receive thread (or, for
  /// timeouts, on the sweeper thread). Exactly one of (result, error) is
  /// meaningful: error == nullptr means success.
  template <typename T>
  using Callback = std::function<void(T result, std::exception_ptr error)>;

  /// Installs the response handler on `transport` (which must be the
  /// client's own endpoint, not the server's) and remembers the server's
  /// node id. `timeout_us` is the default per-call deadline. The transport
  /// must outlive the client.
  Client(runtime::Transport& transport, NodeId server,
         TimeUs timeout_us = 5 * duration::kSecond);

  /// Detaches the response handler and waits out any in-flight delivery
  /// (so a straggler frame can never touch a dead client), stops the
  /// timeout sweeper, and rejects any still-outstanding async calls with
  /// util::IoError.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Attaches a flight recorder: every data op issued afterwards is
  /// stamped with a trace context (a fresh id, sampled per the tracer's
  /// 1-in-N policy — or the caller's own context when one is passed
  /// explicitly) and records a Stage::kClient span covering the full
  /// round trip when it completes. Not synchronized: attach before
  /// issuing calls, from the constructing thread. The tracer must outlive
  /// the client. nullptr detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // ------------------------------------------------- synchronous wrappers
  // Each is async + .get(); throws util::IoError on timeout and
  // protocol::RpcError on a typed server error. The namespace-less
  // overloads target kDefaultNamespace.

  /// Tries to take `n` tokens for `key`.
  AcquireResult acquire(std::uint64_t key, Tokens n) {
    return acquire(kDefaultNamespace, key, n);
  }
  AcquireResult acquire(NamespaceId ns, std::uint64_t key, Tokens n) {
    return acquire_async(ns, key, n).get();
  }

  /// Gives back up to `n` previously granted tokens.
  RefundResult refund(std::uint64_t key, Tokens n) {
    return refund(kDefaultNamespace, key, n);
  }
  RefundResult refund(NamespaceId ns, std::uint64_t key, Tokens n) {
    return refund_async(ns, key, n).get();
  }

  /// Reads the balance without creating an account.
  QueryResult query(std::uint64_t key) { return query(kDefaultNamespace, key); }
  QueryResult query(NamespaceId ns, std::uint64_t key) {
    return query_async(ns, key).get();
  }

  /// Executes all ops in one round trip; results align with `ops`.
  std::vector<AcquireResult> acquire_batch(std::span<const AcquireOp> ops) {
    return acquire_batch(kDefaultNamespace, ops);
  }
  std::vector<AcquireResult> acquire_batch(NamespaceId ns,
                                           std::span<const AcquireOp> ops) {
    return acquire_batch_async(ns, ops).get();
  }

  // ------------------------------------------------------- async core
  // `timeout_us` == 0 means the client's default deadline. The trailing
  // `trace` pointer (callback flavors) stamps the caller's own context on
  // the frame instead of minting one — the cluster client uses this to
  // keep one trace id across a redirect retry; it is read before the call
  // returns and need not outlive it.

  std::future<AcquireResult> acquire_async(std::uint64_t key, Tokens n) {
    return acquire_async(kDefaultNamespace, key, n);
  }
  std::future<AcquireResult> acquire_async(NamespaceId ns, std::uint64_t key,
                                           Tokens n, TimeUs timeout_us = 0);
  void acquire_async(NamespaceId ns, std::uint64_t key, Tokens n,
                     Callback<AcquireResult> done, TimeUs timeout_us = 0,
                     const protocol::TraceContext* trace = nullptr);

  std::future<RefundResult> refund_async(NamespaceId ns, std::uint64_t key,
                                         Tokens n, TimeUs timeout_us = 0);
  void refund_async(NamespaceId ns, std::uint64_t key, Tokens n,
                    Callback<RefundResult> done, TimeUs timeout_us = 0,
                    const protocol::TraceContext* trace = nullptr);

  std::future<QueryResult> query_async(NamespaceId ns, std::uint64_t key,
                                       TimeUs timeout_us = 0);
  void query_async(NamespaceId ns, std::uint64_t key, Callback<QueryResult> done,
                   TimeUs timeout_us = 0,
                   const protocol::TraceContext* trace = nullptr);

  std::future<std::vector<AcquireResult>> acquire_batch_async(
      NamespaceId ns, std::span<const AcquireOp> ops, TimeUs timeout_us = 0);
  void acquire_batch_async(NamespaceId ns, std::span<const AcquireOp> ops,
                           Callback<std::vector<AcquireResult>> done,
                           TimeUs timeout_us = 0,
                           const protocol::TraceContext* trace = nullptr);

  // ------------------------------------------------------------- admin

  /// Creates namespace `ns` with the given policy, or resets it if it
  /// already exists. Returns true if newly created. Throws
  /// protocol::RpcError{kInvalidConfig} on a rejected policy.
  bool configure_namespace(NamespaceId ns, const NamespaceConfig& config);

  /// Policy/capacity/account-count of `ns`, or nullopt if it doesn't exist.
  std::optional<NamespaceInfo> namespace_info(NamespaceId ns);

  // ------------------------------------------------------------ cluster

  /// The server's current membership map. Throws protocol::RpcError
  /// {kUnsupported} if the server is not a cluster node.
  cluster::ClusterMap fetch_cluster_map();
  void fetch_cluster_map_async(Callback<cluster::ClusterMap> done,
                               TimeUs timeout_us = 0);

  /// Pushes `map` to the server; the node adopts it if strictly newer and
  /// starts handing off the accounts it no longer owns.
  ApplyMapResult apply_cluster_map(const cluster::ClusterMap& map);

  // --------------------------------------------------------- telemetry

  /// The server's kStats snapshot (empty if the server has no registry).
  /// Never suppressed by the backoff window.
  std::vector<protocol::StatsEntry> stats();
  void stats_async(Callback<std::vector<protocol::StatsEntry>> done,
                   TimeUs timeout_us = 0);

  /// The server's flight-recorder snapshot, oldest span first (empty if
  /// the server has no tracer). `max_spans` caps the reply; 0 means the
  /// server-side limit. Never suppressed by the backoff window. Throws
  /// protocol::RpcError{kUnsupported} from a v1-only server.
  std::vector<protocol::TraceSpan> fetch_traces(std::uint32_t max_spans = 0);
  void fetch_traces_async(std::uint32_t max_spans,
                          Callback<std::vector<protocol::TraceSpan>> done,
                          TimeUs timeout_us = 0);

  // ------------------------------------------------------------ counters

  /// Calls that timed out so far (each was rejected with util::IoError).
  std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

  /// Times the fabric reported the server's connection closed/failed; each
  /// occurrence rejected every in-flight call with util::IoError.
  std::uint64_t disconnects() const {
    return disconnects_.load(std::memory_order_relaxed);
  }

  /// kOverloaded replies received from the server (each opened/extended
  /// the backoff window).
  std::uint64_t overloads() const {
    return overloads_.load(std::memory_order_relaxed);
  }

  /// Data ops rejected locally inside the backoff window (they never
  /// reached the wire).
  std::uint64_t backoff_rejections() const {
    return backoff_rejections_.load(std::memory_order_relaxed);
  }

  /// Calls in flight right now (registered, neither answered nor expired).
  std::size_t inflight() const;

  /// Runs one synchronous sweep of the timeout wheel, expiring every call
  /// whose deadline has passed (their futures reject with util::IoError).
  /// The background sweeper does this automatically every tick; external
  /// event loops (or tests that must not depend on sweeper scheduling)
  /// can force a pass. Returns the number of calls expired.
  std::size_t expire_overdue();

 private:
  /// Type-erased completion: receives the decoded response, or an error.
  using Completion =
      std::function<void(protocol::Response response, std::exception_ptr error)>;

  /// Deadlines are bucketed into a fixed ring of slots; expiry sweeps cost
  /// O(entries in the tick's slot), not O(total in flight).
  static constexpr std::size_t kWheelSlots = 256;

  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  TimeUs now_us() const;
  /// Registers the slot, arms the wheel and sends the frame. Calls marked
  /// `data_op` honor the overload backoff window (rejected locally with
  /// OverloadedError while it is open).
  void start_call(std::uint64_t id, std::vector<std::byte> frame,
                  Completion done, TimeUs timeout_us, bool data_op = false);
  /// Stamps a trace context onto `frame` — the caller's own (`trace`) or
  /// a tracer-minted one — and wraps `done` to record the round-trip
  /// kClient span on completion. Identity when the call is untraced.
  Completion traced_call(std::vector<std::byte>& frame, Completion done,
                         const protocol::TraceContext* trace, NamespaceId ns,
                         std::uint64_t key);
  void on_frame(NodeId from, std::vector<std::byte> payload);
  void on_peer_down(NodeId peer);
  void sweep_loop();
  /// One wheel pass under `lock` (which is released while completions
  /// run, and re-held on return). Returns the number expired.
  std::size_t sweep_pass(std::unique_lock<std::mutex>& lock);

  runtime::Transport* transport_;
  NodeId server_;
  obs::Tracer* tracer_ = nullptr;
  TimeUs timeout_us_;
  TimeUs wheel_tick_us_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> disconnects_{0};
  std::atomic<std::uint64_t> overloads_{0};
  std::atomic<std::uint64_t> backoff_rejections_{0};
  /// End of the overload backoff window, on the now_us() clock (0 = none).
  std::atomic<TimeUs> suppress_until_us_{0};

  struct Pending {
    Completion done;
    TimeUs deadline_us = 0;
    TimeUs timeout_us = 0;  ///< the effective per-call timeout (for errors)
  };

  mutable std::mutex mu_;
  std::condition_variable sweep_cv_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::vector<std::vector<std::uint64_t>> wheel_;  ///< ids by deadline slot
  std::int64_t swept_tick_ = -1;  ///< last wheel tick fully processed
  bool closed_ = false;           ///< no new calls; reject immediately
  bool stop_sweeper_ = false;
  std::thread sweeper_;
};

}  // namespace toka::service
