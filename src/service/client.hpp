// Client library for tokend: synchronous request/response over a Transport.
//
// A Client owns one transport endpoint and talks to one server endpoint.
// It is safe to call from any number of application threads concurrently:
// every call gets a fresh request id, outstanding calls are correlated by
// id when responses arrive on the transport's receive thread, and a call
// that receives no response within the timeout throws util::IoError
// (the fabric is best-effort, so a lost frame surfaces as a timeout, not
// a hang).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/protocol.hpp"
#include "util/types.hpp"

namespace toka::service {

class Client {
 public:
  /// Installs the response handler on `transport` (which must be the
  /// client's own endpoint, not the server's) and remembers the server's
  /// node id. The transport must outlive the client; destroy the client
  /// only after its calls have returned.
  Client(runtime::Transport& transport, NodeId server,
         TimeUs timeout_us = 5 * duration::kSecond);

  /// Detaches the response handler and waits out any in-flight delivery,
  /// so a straggler frame (e.g. a reply arriving after a timeout) can
  /// never touch a dead client.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Tries to take `n` tokens for `key`. Throws util::IoError on timeout
  /// or a mismatched response.
  AcquireResult acquire(std::uint64_t key, Tokens n);

  /// Gives back up to `n` previously granted tokens.
  RefundResult refund(std::uint64_t key, Tokens n);

  /// Reads the balance without creating an account.
  QueryResult query(std::uint64_t key);

  /// Executes all ops in one round trip; results align with `ops`.
  std::vector<AcquireResult> acquire_batch(std::span<const AcquireOp> ops);

  /// Calls that timed out so far (each also threw util::IoError).
  std::uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  /// Sends `frame` under a fresh slot for `id` and blocks for the reply.
  protocol::Response call(std::uint64_t id, std::vector<std::byte> frame);
  void on_frame(NodeId from, std::vector<std::byte> payload);
  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  runtime::Transport* transport_;
  NodeId server_;
  TimeUs timeout_us_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> timeouts_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  /// Outstanding calls: id -> response slot (nullopt until it arrives).
  std::unordered_map<std::uint64_t, std::optional<protocol::Response>> pending_;
};

}  // namespace toka::service
