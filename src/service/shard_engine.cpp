#include "service/shard_engine.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <span>

namespace toka::service {

namespace {
/// Ops popped per queue drain. Bounds how long a worker can go between
/// park checks, so a quiesce never waits on more than one batch per worker.
constexpr std::size_t kDrainMax = 256;

/// The engine whose worker thread this is (nullptr on every other thread):
/// quiesced() uses it to refuse self-deadlocking calls from completions.
thread_local ShardEngine* tls_worker_engine = nullptr;
}  // namespace

ShardEngine::ShardEngine(AccountTable& table, ShardEngineOptions options)
    : table_(&table),
      registry_(options.registry),
      tracer_(options.tracer),
      on_drain_(std::move(options.on_drain)) {
  TOKA_CHECK_MSG(table.config().exclusive_shards,
                 "ShardEngine requires a table built with "
                 "ServiceConfig::exclusive_shards (the engine owns the "
                 "shards; striped locks would be dead weight)");
  std::size_t workers = options.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers = std::clamp<std::size_t>(workers, 1, table.shard_count());
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.push_back(std::make_unique<Worker>(options.queue_capacity));
  if (registry_ != nullptr) register_metrics(*registry_);
  for (std::size_t w = 0; w < workers; ++w)
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
}

ShardEngine::~ShardEngine() {
  drain();
  if (registry_ != nullptr) {
    for (const std::string& name : metric_names_) registry_->remove(name);
  }
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) worker->queue.notify();
  {
    // Pair the flag flip with the park mutex so a worker between its
    // predicate check and its wait cannot miss the resume notification.
    std::lock_guard lock(park_mu_);
  }
  resume_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardEngine::register_metrics(obs::Registry& registry) {
  const auto add = [&](std::string name) {
    metric_names_.push_back(name);
    return name;
  };
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    registry.gauge(add("tokend_shard_queue_depth_w" + std::to_string(w)),
                   [this, w] {
                     return static_cast<double>(queue_depth(w));
                   });
  }
  registry.gauge(add("tokend_shard_queue_depth_max"),
                 [this] { return static_cast<double>(queue_depth_max()); });
  registry.gauge(add("tokend_shard_workers"), [this] {
    return static_cast<double>(worker_count());
  });
}

std::size_t ShardEngine::queue_depth_max() const {
  std::size_t depth = 0;
  for (const auto& worker : workers_)
    depth = std::max(depth, worker->queue.size());
  return depth;
}

bool ShardEngine::submit_batch(NamespaceId ns, std::vector<AcquireOp> ops,
                               EngineBatch::Completion done, void* ctx,
                               std::uint64_t trace_id, bool trace_sampled) {
  const std::size_t total = ops.size();
  auto batch = std::make_unique<EngineBatch>();
  batch->ns = ns;
  batch->done = done;
  batch->ctx = ctx;
  batch->results.resize(total);
  if (total == 0) {
    // Degenerate batch: complete inline on the submitter.
    if (done != nullptr) done(*batch, ctx);
    return true;
  }
  // Counting sort by owner worker: one pass to count, one to scatter the
  // ops into per-worker contiguous groups (original positions remembered
  // so the worker can write results positionally).
  const std::size_t W = workers_.size();
  std::vector<std::uint32_t> owner(total);
  std::vector<std::uint32_t> count(W, 0);
  for (std::size_t i = 0; i < total; ++i) {
    owner[i] = static_cast<std::uint32_t>(worker_of(ns, ops[i].key));
    ++count[owner[i]];
  }
  std::vector<std::uint32_t> offset(W, 0);
  std::uint32_t running = 0;
  for (std::size_t w = 0; w < W; ++w) {
    offset[w] = running;
    running += count[w];
  }
  batch->ops.resize(total);
  batch->original.resize(total);
  std::vector<std::uint32_t> cursor = offset;
  for (std::size_t i = 0; i < total; ++i) {
    const std::uint32_t pos = cursor[owner[i]]++;
    batch->ops[pos] = ops[i];
    batch->original[pos] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::size_t> targets;
  for (std::size_t w = 0; w < W; ++w) {
    if (count[w] == 0) continue;
    batch->groups.push_back(
        EngineBatch::Group{offset[w], offset[w] + count[w]});
    targets.push_back(w);
  }
  batch->remaining.store(static_cast<std::uint32_t>(batch->groups.size()),
                         std::memory_order_relaxed);
  // All-or-nothing admission: a group op occupies one queue cell, so a
  // headroom probe per target (racy, but the blocking push below is the
  // backstop) is enough to keep batch sheds clean — either every group is
  // posted or none is.
  for (const std::size_t w : targets) {
    if (workers_[w]->queue.size() + 1 >= workers_[w]->queue.capacity())
      return false;  // batch (unique_ptr) frees; nothing was enqueued
  }
  // From the first push on, workers race us to finish groups and the last
  // finisher deletes the batch — so the loop may not touch `raw` after a
  // push. The group count lives in `targets`, everything else in the op.
  const bool trace = trace_id != 0 && tracer_ != nullptr;
  const std::int64_t t_submit_us = trace ? obs::Tracer::now_us() : 0;
  EngineBatch* raw = batch.release();
  for (std::size_t g = 0; g < targets.size(); ++g) {
    ShardOp op;
    op.kind = ShardOp::Kind::kBatchGroup;
    op.ns = ns;
    op.key = g;
    op.ctx = raw;
    if (trace) {
      op.traced = true;
      op.trace_sampled = trace_sampled;
      op.trace_id = trace_id;
      op.t_submit_us = t_submit_us;
    }
    workers_[targets[g]]->queue.push(std::move(op));
  }
  return true;
}

void ShardEngine::drain() {
  for (auto& worker : workers_) {
    while (worker->queue.size() > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // The queues are empty; one quiesce barrier waits out whatever each
  // worker had already popped.
  quiesced([] {});
}

void ShardEngine::begin_quiesce() {
  TOKA_CHECK_MSG(tls_worker_engine != this,
                 "quiesced() called from a shard worker completion — that "
                 "would park the caller and deadlock; run admin ops from a "
                 "non-worker thread");
  admin_mu_.lock();
  park_requested_.store(true, std::memory_order_release);
  for (auto& worker : workers_) worker->queue.notify();
  std::unique_lock lock(park_mu_);
  park_cv_.wait(lock, [this] { return parked_ == workers_.size(); });
}

void ShardEngine::end_quiesce() {
  {
    std::lock_guard lock(park_mu_);
    park_requested_.store(false, std::memory_order_release);
  }
  resume_cv_.notify_all();
  admin_mu_.unlock();
}

void ShardEngine::park() {
  std::unique_lock lock(park_mu_);
  ++parked_;
  if (parked_ == workers_.size()) park_cv_.notify_all();
  resume_cv_.wait(lock, [this] {
    return !park_requested_.load(std::memory_order_relaxed) ||
           stop_.load(std::memory_order_relaxed);
  });
  --parked_;
}

void ShardEngine::worker_loop(std::size_t w) {
  tls_worker_engine = this;
  Worker& me = *workers_[w];
  std::vector<ShardOp> ops;
  ops.reserve(kDrainMax);
  std::vector<AcquireOp> run;
  for (;;) {
    if (park_requested_.load(std::memory_order_acquire)) park();
    if (stop_.load(std::memory_order_acquire)) break;
    ops.clear();
    const std::size_t n = me.queue.pop_batch(ops, kDrainMax);
    if (n == 0) {
      maybe_evict(me, w);
      // The wait also breaks on the eviction deadline so an idle worker
      // still sweeps its shards' TTLs (the clock read is one atomic load).
      me.queue.wait_nonempty([this, &me] {
        return stop_.load(std::memory_order_relaxed) ||
               park_requested_.load(std::memory_order_relaxed) ||
               table_->clock().now_us() >= me.next_evict_us;
      });
      continue;
    }
    // One pop timestamp serves the whole drained batch (queue-wait ends and
    // execute begins here for every op in it); taken only when some op in
    // the batch is actually traced, so an untraced drain reads no clock.
    std::int64_t t_pop_us = 0;
    if (tracer_ != nullptr) {
      for (const ShardOp& op : ops) {
        if (op.traced) {
          t_pop_us = obs::Tracer::now_us();
          break;
        }
      }
    }
    execute(ops, run, t_pop_us);
    // Drain boundary: completions for the whole batch have fired, this
    // worker's shards are between batches — the granularity at which the
    // replication layer captures per-account deltas (one flush per drain).
    if (on_drain_) on_drain_(w);
    maybe_evict(me, w);
  }
  tls_worker_engine = nullptr;
}

void ShardEngine::execute(std::vector<ShardOp>& ops,
                          std::vector<AcquireOp>& run, std::int64_t t_pop_us) {
  std::size_t i = 0;
  while (i < ops.size()) {
    ShardOp& op = ops[i];
    switch (op.kind) {
      case ShardOp::Kind::kAcquire: {
        // Coalesce the maximal run of same-namespace acquires into one
        // vectorized acquire_batch call: the namespace resolves once and
        // the coarse clock is read once per shard visit, settling the
        // whole run against that read — the settle-then-decide loop.
        std::size_t j = i + 1;
        while (j < ops.size() && ops[j].kind == ShardOp::Kind::kAcquire &&
               ops[j].ns == op.ns)
          ++j;
        if (j - i == 1) {
          try {
            const AcquireResult res = table_->acquire(op.ns, op.key, op.tokens);
            op.out_a = res.granted;
            op.out_b = res.balance;
            op.out_fresh = res.fresh;
          } catch (const util::InvariantError&) {
            op.ok = false;
          }
          complete(op, t_pop_us);
        } else {
          run.clear();
          for (std::size_t k = i; k < j; ++k)
            run.push_back(AcquireOp{ops[k].key, ops[k].tokens});
          try {
            const std::vector<AcquireResult> res =
                table_->acquire_batch(op.ns, run);
            for (std::size_t k = i; k < j; ++k) {
              ops[k].out_a = res[k - i].granted;
              ops[k].out_b = res[k - i].balance;
              ops[k].out_fresh = res[k - i].fresh;
            }
          } catch (const util::InvariantError&) {
            // One bad op (negative tokens, vanished namespace) poisons the
            // whole vectorized call: redo the run one op at a time so only
            // the offender fails.
            for (std::size_t k = i; k < j; ++k) {
              try {
                const AcquireResult res =
                    table_->acquire(ops[k].ns, ops[k].key, ops[k].tokens);
                ops[k].out_a = res.granted;
                ops[k].out_b = res.balance;
                ops[k].out_fresh = res.fresh;
              } catch (const util::InvariantError&) {
                ops[k].ok = false;
              }
            }
          }
          for (std::size_t k = i; k < j; ++k) complete(ops[k], t_pop_us);
        }
        i = j;
        break;
      }
      case ShardOp::Kind::kRefund: {
        try {
          const RefundResult res = table_->refund(op.ns, op.key, op.tokens);
          op.out_a = res.accepted;
          op.out_b = res.balance;
        } catch (const util::InvariantError&) {
          op.ok = false;
        }
        complete(op, t_pop_us);
        ++i;
        break;
      }
      case ShardOp::Kind::kQuery: {
        try {
          const QueryResult res = table_->query(op.ns, op.key);
          op.out_a = res.balance;
          op.out_b = res.exists ? 1 : 0;
        } catch (const util::InvariantError&) {
          op.ok = false;
        }
        complete(op, t_pop_us);
        ++i;
        break;
      }
      case ShardOp::Kind::kBatchGroup: {
        run_batch_group(op, t_pop_us);
        ++i;
        break;
      }
    }
  }
}

void ShardEngine::record_op_spans(ShardOp& op, std::int64_t t_pop_us) {
  // The §3.4 decision the span carries: how the tokens (if any) were paid.
  obs::Decision decision = obs::Decision::kNone;
  if (!op.ok) {
    decision = obs::Decision::kError;
  } else if (op.kind == ShardOp::Kind::kAcquire) {
    if (op.out_a == 0 && op.tokens > 0) {
      decision = obs::Decision::kDenied;
    } else {
      decision = op.out_fresh ? obs::Decision::kFresh : obs::Decision::kBank;
    }
  } else if (op.kind == ShardOp::Kind::kRefund) {
    decision = obs::Decision::kRefund;
  }
  const std::int64_t t_done_us = obs::Tracer::now_us();
  tracer_->record(obs::Stage::kQueueWait, obs::Decision::kNone, op.trace_id,
                  op.key, op.ns, op.t_submit_us, t_pop_us - op.t_submit_us,
                  op.trace_sampled);
  tracer_->record(obs::Stage::kExecute, decision, op.trace_id, op.key, op.ns,
                  t_pop_us, t_done_us - t_pop_us, op.trace_sampled);
}

void ShardEngine::run_batch_group(ShardOp& op, std::int64_t t_pop_us) {
  auto* batch = static_cast<EngineBatch*>(op.ctx);
  const EngineBatch::Group& group =
      batch->groups[static_cast<std::size_t>(op.key)];
  const std::span<const AcquireOp> slice(batch->ops.data() + group.begin,
                                         group.end - group.begin);
  obs::Decision decision = obs::Decision::kBank;
  try {
    const std::vector<AcquireResult> res =
        table_->acquire_batch(batch->ns, slice);
    for (std::size_t k = 0; k < slice.size(); ++k) {
      batch->results[batch->original[group.begin + k]] = res[k];
      if (res[k].fresh) decision = obs::Decision::kFresh;
    }
  } catch (const util::InvariantError&) {
    for (std::size_t k = 0; k < slice.size(); ++k)
      batch->results[batch->original[group.begin + k]] = AcquireResult{};
    decision = obs::Decision::kError;
  }
  if (tracer_ != nullptr && op.traced) {
    // One queue-wait + one execute span per worker group, stamped with the
    // group's first key. Read everything off the batch *before* the
    // release below: the last finisher deletes it.
    const std::uint64_t key = slice.empty() ? 0 : slice.front().key;
    const NamespaceId ns = batch->ns;
    const std::int64_t t_done_us = obs::Tracer::now_us();
    tracer_->record(obs::Stage::kQueueWait, obs::Decision::kNone, op.trace_id,
                    key, ns, op.t_submit_us, t_pop_us - op.t_submit_us,
                    op.trace_sampled);
    tracer_->record(obs::Stage::kExecute, decision, op.trace_id, key, ns,
                    t_pop_us, t_done_us - t_pop_us, op.trace_sampled);
  }
  if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (batch->done != nullptr) batch->done(*batch, batch->ctx);
    delete batch;
  }
}

void ShardEngine::maybe_evict(Worker& me, std::size_t w) {
  const TimeUs now = table_->clock().now_us();
  if (now < me.next_evict_us) return;
  const TimeUs ttl = table_->min_idle_ttl_us();
  if (ttl > 0) {
    // Sweep only the shards this worker owns — eviction stays within the
    // ownership discipline, no quiesce needed.
    for (std::size_t s = w; s < table_->shard_count(); s += workers_.size())
      table_->evict_idle_shard(s);
    me.next_evict_us = now + std::max<TimeUs>(ttl / 4, 1'000);
  } else {
    // No namespace evicts right now; re-check in a (table-clock) second so
    // TTL namespaces configured at runtime start getting sweeps.
    me.next_evict_us = now + 1'000'000;
  }
}

}  // namespace toka::service
