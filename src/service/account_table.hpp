// tokend's in-memory store: millions of token accounts behind striped locks.
//
// The table maps opaque 64-bit keys (users, API tokens, flows) to
// core::TokenAccount instances backed by one shared core::Strategy. Keys are
// hash-partitioned over N shards (N rounded up to a power of two); each
// shard owns its accounts behind its own mutex, so concurrent requests for
// different shards never contend and a shard critical section is a handful
// of arithmetic operations.
//
// Token granting is *lazy*, driven by a coarse shared clock instead of a
// timer per account: every account remembers the tick index it last settled
// at, and any access first replays the elapsed ticks through
// TokenAccount::on_tick (capped — see ServiceConfig::max_catchup_ticks).
// A proactive decision during replay has no message to pay for in an
// admission-control service, so the period's token is dropped, mirroring
// the simulator's "drop the token when no peer is online" rule that keeps
// the §3.4 burst bound intact (see DESIGN.md, "The tokend service layer").
//
// Accounts idle longer than ServiceConfig::idle_ttl_us are evicted by
// evict_idle() sweeps (the daemon's ClockDriver runs them periodically);
// a re-created account restarts from the initial balance, which only
// under-grants, never over-grants.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/account.hpp"
#include "core/rate_limit.hpp"
#include "core/strategy.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace toka::service {

/// The service time source: microseconds since the table's epoch, advanced
/// monotonically by one writer (the ClockDriver or a test) and read by
/// every request thread. Deliberately coarse — accounts settle against the
/// tick index now_us()/delta, so sub-period precision is never needed.
class CoarseClock {
 public:
  TimeUs now_us() const { return now_.load(std::memory_order_relaxed); }

  /// Moves the clock forward to `t`; calls that would move it backwards
  /// are ignored (the clock never retreats).
  void advance_to(TimeUs t);

  /// Moves the clock forward by `dt` >= 0.
  void advance(TimeUs dt);

 private:
  std::atomic<TimeUs> now_{0};
};

/// Configuration for an AccountTable / tokend instance.
struct ServiceConfig {
  /// Number of lock stripes; rounded up to a power of two. More shards
  /// mean less contention but a bigger fixed footprint; 64-256 covers a
  /// large multicore comfortably.
  std::size_t shards = 64;
  /// Token period Δ: every account earns one token decision per delta_us.
  TimeUs delta_us = 100'000;
  /// Strategy backing every account. Must have bounded effective capacity:
  /// any paper strategy or the classic token bucket works, the pure
  /// reactive reference (unbounded burst) is rejected.
  core::StrategyConfig strategy{};
  /// Starting balance of a freshly created (or re-created) account.
  /// Must not exceed the effective capacity.
  Tokens initial_tokens = 0;
  /// Accounts untouched for this long are eligible for evict_idle();
  /// 0 disables eviction.
  TimeUs idle_ttl_us = 0;
  /// Seeds the per-shard RNG streams (tick decisions, randomized rounding).
  std::uint64_t seed = 1;
  /// Replay cap for lazy granting: an access settles at most this many
  /// elapsed ticks (0 = auto: 2*capacity, at least 16). Ticks beyond the
  /// cap are forfeited — conservative, an idle account's balance has
  /// converged to the capacity region long before the cap anyway.
  Tokens max_catchup_ticks = 0;
  /// Debug: attach a core::RateLimitAuditor to every account and record
  /// each granted token, so audit_violation() can verify the §3.4 burst
  /// bound end-to-end. O(sends²) memory/time per account — tests only.
  bool audit = false;
};

/// One acquire request (also the wire/batch unit).
struct AcquireOp {
  std::uint64_t key = 0;
  Tokens tokens = 0;
};

struct AcquireResult {
  Tokens granted = 0;  ///< tokens actually deducted, in [0, requested]
  Tokens balance = 0;  ///< balance after the deduction
};

struct RefundResult {
  Tokens accepted = 0;  ///< tokens actually restored, in [0, offered]
  Tokens balance = 0;   ///< balance after the restore
};

struct QueryResult {
  Tokens balance = 0;
  bool exists = false;  ///< false: no live account for the key (balance 0)
};

/// Service counters: kept per shard (under its lock) and summed into a
/// snapshot by AccountTable::stats().
struct TableStats {
  std::uint64_t accounts = 0;           ///< live accounts right now
  std::uint64_t accounts_created = 0;
  std::uint64_t accounts_evicted = 0;
  std::uint64_t acquires = 0;           ///< acquire calls (incl. batch ops)
  std::uint64_t tokens_requested = 0;
  std::uint64_t tokens_granted = 0;
  std::uint64_t refunds = 0;
  std::uint64_t tokens_refunded = 0;
  std::uint64_t tokens_refund_dropped = 0;  ///< offered but not accepted
  std::uint64_t queries = 0;
  std::uint64_t proactive_dropped = 0;  ///< replayed ticks spent proactively
  std::uint64_t ticks_forfeited = 0;    ///< elapsed ticks past the replay cap

  /// Adds every counter of `other` into this snapshot.
  void merge(const TableStats& other);
};

class AccountTable {
 public:
  /// Validates the config (bounded capacity, initial balance within it)
  /// and builds the empty shards. Throws util::InvariantError on misuse.
  explicit AccountTable(ServiceConfig config);

  AccountTable(const AccountTable&) = delete;
  AccountTable& operator=(const AccountTable&) = delete;

  const ServiceConfig& config() const { return config_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// The effective balance cap: strategy capacity, or the bucket size for
  /// the classic token bucket.
  Tokens capacity_bound() const { return capacity_; }

  CoarseClock& clock() { return clock_; }
  const CoarseClock& clock() const { return clock_; }

  /// Tries to take `n` >= 0 tokens for `key`, creating the account on
  /// first contact. Grants min(n, balance) after settling elapsed ticks.
  AcquireResult acquire(std::uint64_t key, Tokens n);

  /// Gives back up to `n` >= 0 previously granted tokens. The accepted
  /// amount is capped by what the account still has outstanding *and* by
  /// the capacity headroom, so the balance never exceeds capacity_bound()
  /// (late refunds cannot mint burst allowance; see DESIGN.md). Refunds to
  /// unknown/evicted keys are dropped.
  RefundResult refund(std::uint64_t key, Tokens n);

  /// Reads the settled balance without creating an account.
  QueryResult query(std::uint64_t key);

  /// Executes `ops` with one lock acquisition per touched shard instead of
  /// one per op; results are positionally aligned with `ops`.
  std::vector<AcquireResult> acquire_batch(std::span<const AcquireOp> ops);

  /// Removes accounts idle for at least idle_ttl_us (no-op when the TTL is
  /// 0). Locks one shard at a time. Returns the number evicted.
  std::size_t evict_idle();

  std::size_t account_count() const;
  TableStats stats() const;

  /// When ServiceConfig::audit is on: checks every live account's grant
  /// trace against the §3.4 bound; returns the first violation description
  /// ("key=... : ...") or nullopt. Exhaustive — test-sized tables only.
  std::optional<std::string> audit_violation() const;

 private:
  struct Entry {
    core::TokenAccount account;
    std::int64_t last_tick = 0;   ///< tick index last settled at
    TimeUs last_access_us = 0;    ///< for TTL eviction
    std::unique_ptr<core::RateLimitAuditor> auditor;
  };

  /// Padded to a cache line so neighbouring shards' mutexes don't false-
  /// share under contention. `stats.accounts` is unused per shard (the
  /// live count is accounts.size()); everything else accumulates here.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> accounts;
    util::Rng rng{0};
    TableStats stats;
  };

  Shard& shard_for(std::uint64_t key);
  std::size_t shard_index(std::uint64_t key) const;
  Entry& find_or_create(Shard& shard, std::uint64_t key, std::int64_t tick,
                        TimeUs now);
  /// Replays elapsed ticks up to the cap; updates last_tick/last_access.
  void settle(Shard& shard, Entry& entry, std::int64_t tick, TimeUs now);
  AcquireResult acquire_locked(Shard& shard, std::uint64_t key, Tokens n,
                               std::int64_t tick, TimeUs now);

  ServiceConfig config_;
  std::unique_ptr<core::Strategy> strategy_;
  Tokens capacity_;        ///< effective balance cap
  Tokens bucket_cap_;      ///< TokenAccount bucket cap (token bucket only)
  Tokens catchup_limit_;   ///< resolved max_catchup_ticks
  CoarseClock clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_;
};

/// Wall-clock driver for a live tokend: a background thread that advances
/// the table's CoarseClock to the elapsed wall time every `resolution_us`
/// and runs idle-account eviction sweeps every TTL/4 (when a TTL is set).
class ClockDriver {
 public:
  explicit ClockDriver(AccountTable& table, TimeUs resolution_us = 1'000);

  /// Stops the thread if still running.
  ~ClockDriver();

  ClockDriver(const ClockDriver&) = delete;
  ClockDriver& operator=(const ClockDriver&) = delete;

  void start();
  /// Idempotent.
  void stop();

 private:
  void loop();

  AccountTable* table_;
  TimeUs resolution_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace toka::service
