// tokend's in-memory store: millions of token accounts behind striped locks.
//
// The table maps (namespace, key) pairs to core::TokenAccount instances.
// A *namespace* is a runtime-configurable policy domain (a tenant, an API
// class, a flow group): it owns its own core::StrategyConfig, token period
// Δ, initial balance, idle TTL and audit switch, so one tokend instance can
// rate-limit many traffic classes with different disciplines at once.
// Namespace 0 always exists (built from ServiceConfig); others are created
// or reset at runtime through configure_namespace() (the protocol v2 admin
// path). Namespaces are never deleted — reconfiguring one drops its
// accounts, which only under-grants (a re-created account restarts from the
// initial balance), never over-grants.
//
// Keys are hash-partitioned over N shards (N rounded up to a power of two);
// each shard owns its accounts behind its own mutex, so concurrent requests
// for different shards never contend and a shard critical section is a
// handful of arithmetic operations. The namespace registry is read-mostly
// (std::shared_mutex): a request resolves its namespace exactly once —
// strategy, clock divisor Δ and capacity come out of that one lookup — and
// then works lock-free against the resolved snapshot.
//
// Token granting is *lazy*, driven by a coarse shared clock instead of a
// timer per account: every account remembers the tick index it last settled
// at, and any access first replays the elapsed ticks through
// TokenAccount::on_tick (capped — see NamespaceConfig::max_catchup_ticks).
// A proactive decision during replay has no message to pay for in an
// admission-control service, so the period's token is dropped, mirroring
// the simulator's "drop the token when no peer is online" rule that keeps
// the §3.4 burst bound intact (see DESIGN.md, "The tokend service layer").
//
// Accounts idle longer than their namespace's idle_ttl_us are evicted by
// evict_idle() sweeps (the daemon's ClockDriver runs them periodically).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/account.hpp"
#include "core/rate_limit.hpp"
#include "core/strategy.hpp"
#include "obs/admission.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace toka::service {

/// Identifier of a policy namespace. Dense ids are not required; the id is
/// an opaque 32-bit handle chosen by the operator.
using NamespaceId = std::uint32_t;

/// The namespace every v1 frame (and every namespace-less call) targets.
inline constexpr NamespaceId kDefaultNamespace = 0;

/// The service time source: microseconds since the table's epoch, advanced
/// monotonically by one writer (the ClockDriver or a test) and read by
/// every request thread. Deliberately coarse — accounts settle against the
/// tick index now_us()/Δ, so sub-period precision is never needed.
class CoarseClock {
 public:
  TimeUs now_us() const { return now_.load(std::memory_order_relaxed); }

  /// Moves the clock forward to `t`; calls that would move it backwards
  /// are ignored (the clock never retreats).
  void advance_to(TimeUs t);

  /// Moves the clock forward by `dt` >= 0.
  void advance(TimeUs dt);

 private:
  std::atomic<TimeUs> now_{0};
};

/// Per-namespace policy: everything that can differ between traffic
/// classes. Travels over the wire in ConfigureNamespace/NamespaceInfo
/// frames, so keep it plain data.
struct NamespaceConfig {
  /// Strategy backing every account of the namespace. Must have bounded
  /// effective capacity: any paper strategy or the classic token bucket
  /// works, the pure reactive reference (unbounded burst) is rejected.
  core::StrategyConfig strategy{};
  /// Token period Δ: every account earns one token decision per delta_us.
  TimeUs delta_us = 100'000;
  /// Starting balance of a freshly created (or re-created) account.
  /// Must not exceed the effective capacity.
  Tokens initial_tokens = 0;
  /// Accounts untouched for this long are eligible for evict_idle();
  /// 0 disables eviction for the namespace.
  TimeUs idle_ttl_us = 0;
  /// Replay cap for lazy granting: an access settles at most this many
  /// elapsed ticks (0 = auto: 2*capacity, at least 16). Ticks beyond the
  /// cap are forfeited — conservative, an idle account's balance has
  /// converged to the capacity region long before the cap anyway.
  Tokens max_catchup_ticks = 0;
  /// Debug: attach a core::RateLimitAuditor to every account and record
  /// each granted token, so audit_violation() can verify the §3.4 burst
  /// bound end-to-end. O(sends²) memory/time per account — tests only.
  bool audit = false;

  friend bool operator==(const NamespaceConfig&,
                         const NamespaceConfig&) = default;
};

/// Configuration for an AccountTable / tokend instance: the table-wide
/// knobs plus the default namespace's policy (kept as flat fields so
/// pre-namespace call sites construct it unchanged).
struct ServiceConfig {
  /// Number of lock stripes; rounded up to a power of two. More shards
  /// mean less contention but a bigger fixed footprint; 64-256 covers a
  /// large multicore comfortably.
  std::size_t shards = 64;
  /// Default namespace: token period Δ.
  TimeUs delta_us = 100'000;
  /// Default namespace: strategy backing every account.
  core::StrategyConfig strategy{};
  /// Default namespace: starting balance of a fresh account.
  Tokens initial_tokens = 0;
  /// Default namespace: idle TTL (0 disables eviction).
  TimeUs idle_ttl_us = 0;
  /// Seeds the per-shard RNG streams (tick decisions, randomized rounding).
  std::uint64_t seed = 1;
  /// Default namespace: replay cap for lazy granting (0 = auto).
  Tokens max_catchup_ticks = 0;
  /// Default namespace: §3.4 audit switch (tests only).
  bool audit = false;
  /// Shard-per-thread mode: every shard has exactly one accessor by
  /// construction (its owner worker in a service::ShardEngine, or an admin
  /// path running with all workers parked), so the per-shard mutex is
  /// skipped entirely on the data path. The caller owns the discipline —
  /// concurrent access to one shard in this mode is a data race. The
  /// locked and exclusive modes execute the same code, so grant/audit
  /// semantics are byte-identical.
  bool exclusive_shards = false;

  /// Online §3.4 invariant watchdog: audit 1-in-N keys with a bounded-ring
  /// BurstWatchdog re-checked on every grant (0 disables). Sampling is by
  /// key identity (a distinct hash salt from shard placement, so sampled
  /// keys spread across shards), which keeps a key's audit trace intact
  /// for its whole life instead of sampling individual grants. The
  /// watchdog observes and counts; it never gates a grant.
  std::uint64_t watchdog_sample = 64;

  /// The default namespace's policy as a NamespaceConfig.
  NamespaceConfig default_namespace() const {
    return NamespaceConfig{strategy,          delta_us,
                           initial_tokens,    idle_ttl_us,
                           max_catchup_ticks, audit};
  }
};

/// One acquire request (also the wire/batch unit).
struct AcquireOp {
  std::uint64_t key = 0;
  Tokens tokens = 0;
};

struct AcquireResult {
  Tokens granted = 0;  ///< tokens actually deducted, in [0, requested]
  Tokens balance = 0;  ///< balance after the deduction
  /// True when the grant spent tokens minted by this call's settle — the
  /// §3.4 "fresh token" case, as opposed to a grant served entirely from
  /// the pre-call banked balance. Diagnostic only: never on the wire
  /// (responses stay byte-identical) and ignored by result equality.
  bool fresh = false;
};

struct RefundResult {
  Tokens accepted = 0;  ///< tokens actually restored, in [0, offered]
  Tokens balance = 0;   ///< balance after the restore
};

struct QueryResult {
  Tokens balance = 0;
  bool exists = false;  ///< false: no live account for the key (balance 0)
};

/// Service counters: kept per (shard, namespace) under the shard lock and
/// summed into a snapshot by AccountTable::stats().
struct TableStats {
  std::uint64_t accounts = 0;           ///< live accounts right now
  std::uint64_t accounts_created = 0;
  std::uint64_t accounts_evicted = 0;
  std::uint64_t acquires = 0;           ///< acquire calls (incl. batch ops)
  std::uint64_t tokens_requested = 0;
  std::uint64_t tokens_granted = 0;
  std::uint64_t refunds = 0;
  std::uint64_t tokens_refunded = 0;
  std::uint64_t tokens_refund_dropped = 0;  ///< offered but not accepted
  std::uint64_t refunds_dropped = 0;  ///< refund calls to unknown/evicted keys
  std::uint64_t queries = 0;
  std::uint64_t proactive_dropped = 0;  ///< replayed ticks spent proactively
  std::uint64_t ticks_forfeited = 0;    ///< elapsed ticks past the replay cap
  std::uint64_t accounts_extracted = 0; ///< removed by extract_if (handoff)
  std::uint64_t accounts_installed = 0; ///< created by install_account
  std::uint64_t watchdog_checks = 0;     ///< §3.4 windows audited online
  std::uint64_t watchdog_violations = 0; ///< windows over the §3.4 bound

  /// Adds every counter of `other` into this snapshot.
  void merge(const TableStats& other);
};

/// Admin-visible description of a live namespace.
struct NamespaceInfo {
  NamespaceConfig config;
  Tokens capacity = 0;          ///< effective balance cap
  std::uint64_t accounts = 0;   ///< live accounts in the namespace
};

/// One account's transferable state, as removed by extract_if(). Only the
/// banked balance travels: the receiver settles the account at its own
/// clock, so unsettled elapsed ticks are forfeited (conservative — the
/// handoff can under-grant, never over-grant).
struct AccountExport {
  NamespaceId ns = kDefaultNamespace;
  std::uint64_t key = 0;
  Tokens balance = 0;
};

/// One account's replicated state, as captured by drain_replica_dirty().
/// `balance` is the latest banked value (diagnostics and lag accounting);
/// `floor` is the conservative crash-install value a promoted follower may
/// create the account with — the primary's spend gate guarantees its own
/// balance never drops below any floor still in flight, so installing a
/// floor can only under-grant (see DESIGN.md, "Replicated ownership").
struct ReplicaDeltaExport {
  NamespaceId ns = kDefaultNamespace;
  std::uint64_t key = 0;
  Tokens balance = 0;
  Tokens floor = 0;
};

class AccountTable {
 public:
  /// Validates the config (bounded capacity, initial balance within it),
  /// builds the empty shards and creates the default namespace. Throws
  /// util::InvariantError on misuse.
  explicit AccountTable(ServiceConfig config);

  AccountTable(const AccountTable&) = delete;
  AccountTable& operator=(const AccountTable&) = delete;

  const ServiceConfig& config() const { return config_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// The effective balance cap of the default namespace (resp. `ns`):
  /// strategy capacity, or the bucket size for the classic token bucket.
  Tokens capacity_bound() const { return capacity_bound(kDefaultNamespace); }
  Tokens capacity_bound(NamespaceId ns) const;

  CoarseClock& clock() { return clock_; }
  const CoarseClock& clock() const { return clock_; }

  // ------------------------------------------------------------ namespaces

  /// Creates namespace `ns` with the given policy, or — if it already
  /// exists — replaces its policy and *resets* it (all its accounts are
  /// dropped; they restart from the initial balance on next contact, which
  /// only under-grants). Returns true if the namespace was newly created.
  /// Throws util::InvariantError on an invalid config (unbounded strategy,
  /// initial balance above capacity, non-positive Δ, negative TTL).
  bool configure_namespace(NamespaceId ns, const NamespaceConfig& config);

  bool has_namespace(NamespaceId ns) const;
  std::size_t namespace_count() const;

  /// Policy, capacity and live-account count of `ns`, or nullopt if the
  /// namespace does not exist. O(accounts) for the count — admin path.
  std::optional<NamespaceInfo> namespace_info(NamespaceId ns) const;

  /// Smallest positive idle TTL over all namespaces (0 if eviction is
  /// disabled everywhere). The ClockDriver derives its sweep cadence here.
  TimeUs min_idle_ttl_us() const;

  // -------------------------------------------------------------- data ops
  // The namespace-less overloads target kDefaultNamespace, so every
  // pre-namespace call site keeps compiling and behaving unchanged.
  // Ops on an unknown namespace throw util::InvariantError — the server
  // checks has_namespace() first and answers a typed error instead.

  /// Tries to take `n` >= 0 tokens for `key`, creating the account on
  /// first contact. Grants min(n, balance) after settling elapsed ticks.
  AcquireResult acquire(std::uint64_t key, Tokens n) {
    return acquire(kDefaultNamespace, key, n);
  }
  AcquireResult acquire(NamespaceId ns, std::uint64_t key, Tokens n);

  /// Gives back up to `n` >= 0 previously granted tokens. The accepted
  /// amount is capped by what the account still has outstanding *and* by
  /// the capacity headroom, so the balance never exceeds the namespace's
  /// capacity (late refunds cannot mint burst allowance; see DESIGN.md).
  /// Refunds to unknown/evicted keys are dropped.
  RefundResult refund(std::uint64_t key, Tokens n) {
    return refund(kDefaultNamespace, key, n);
  }
  RefundResult refund(NamespaceId ns, std::uint64_t key, Tokens n);

  /// Reads the settled balance without creating an account.
  QueryResult query(std::uint64_t key) { return query(kDefaultNamespace, key); }
  QueryResult query(NamespaceId ns, std::uint64_t key);

  /// Executes `ops` (all against one namespace) with one lock acquisition
  /// per touched shard instead of one per op; results are positionally
  /// aligned with `ops`.
  std::vector<AcquireResult> acquire_batch(std::span<const AcquireOp> ops) {
    return acquire_batch(kDefaultNamespace, ops);
  }
  std::vector<AcquireResult> acquire_batch(NamespaceId ns,
                                           std::span<const AcquireOp> ops);

  /// Removes accounts idle for at least their namespace's idle_ttl_us
  /// (namespaces with TTL 0 are skipped). An account still holding a
  /// nonzero banked balance gets a grace window: it is only evicted after
  /// 2x its TTL, so a refund for recently granted tokens is not silently
  /// forfeited the instant the TTL elapses. Locks one shard at a time.
  /// Returns the number evicted.
  std::size_t evict_idle();

  /// Sweeps exactly one shard (same TTL/grace rules as evict_idle). The
  /// shard-per-thread engine's workers use this to evict their own shards
  /// without touching anyone else's. Returns the number evicted.
  std::size_t evict_idle_shard(std::size_t shard_idx);

  /// The shard a (namespace, key) pair lives in — the routing function the
  /// shard-per-thread engine uses to pick an owner worker. Stable for the
  /// table's lifetime.
  std::size_t shard_of(NamespaceId ns, std::uint64_t key) const {
    return shard_index(ns, key);
  }

  // ------------------------------------------------------ cluster handoff

  /// Atomically removes every account for which `should_extract(ns, key)`
  /// returns true and returns their transferable state (the cluster layer
  /// ships each export to the key's new owner). Once extracted the state
  /// exists only in the returned vector: if the transfer is lost the
  /// tokens are forfeited, never resurrected here — the rule that keeps
  /// the §3.4 bound intact cluster-wide. Locks one shard at a time.
  std::vector<AccountExport> extract_if(
      const std::function<bool(NamespaceId, std::uint64_t)>& should_extract);

  /// Installs a handed-off account: creates (ns, key) with the given
  /// balance (clamped to [0, capacity]), settled at the current tick.
  /// Returns false — installing nothing — if the namespace does not exist
  /// here or the key already has a live account (the live account already
  /// grants; accepting a second balance would duplicate tokens).
  bool install_account(NamespaceId ns, std::uint64_t key, Tokens balance);

  // --------------------------------------------------- cluster replication

  /// Turns on replica delta capture: data ops start marking their accounts
  /// dirty and acquire grants start honouring the replication spend gate.
  /// `headroom` is how far above the advertised floor an account may spend
  /// without waiting for a follower ack (0 = auto: half the namespace
  /// capacity, rounded up). Smaller headroom → smaller max forfeit on a
  /// crash, but bursts above the headroom throttle at one headroom per ack
  /// round trip. Enable-once; when off (the default) the data path pays
  /// one relaxed atomic load per op.
  void enable_replication(Tokens headroom);
  bool replication_enabled() const {
    return repl_enabled_.load(std::memory_order_relaxed);
  }

  /// Captures and clears one shard's dirty-account list: for every account
  /// touched since the last drain, appends its current (balance, floor) to
  /// `out`, records `seq` as the emission round the floor travels in, and
  /// raises the account's spend gate to that floor. `acked_seq` is the
  /// follower-acknowledged round watermark: an account whose previously
  /// sent floor is covered by it collapses its gate down to that floor
  /// before the new one is taken, which is what un-throttles bursts once
  /// the stream catches up. Locking follows the table mode (no-op guard in
  /// exclusive_shards — the calling worker must own the shard). Returns
  /// the number of deltas appended.
  std::size_t drain_replica_dirty(std::size_t shard_idx, std::uint64_t seq,
                                  std::uint64_t acked_seq,
                                  std::vector<ReplicaDeltaExport>& out);

  std::size_t account_count() const;

  /// All namespaces merged (resp. one namespace's slice).
  TableStats stats() const;
  TableStats stats(NamespaceId ns) const;

  /// One observed heavy hitter, identified by its folded account id
  /// (fold_key(ns, key) — stable per account, not reversible).
  struct HotKey {
    std::uint64_t id = 0;
    std::uint64_t count = 0;
  };

  /// The top-n hottest accounts by acquire traffic, merged from the
  /// per-shard space-saving sketches, descending by count. Counts are the
  /// sketch's (over-)estimates; use acquire totals from stats() as the
  /// share denominator.
  std::vector<HotKey> hot_keys(std::size_t n) const;

  /// When a namespace's audit switch is on: checks every live account's
  /// grant trace against the §3.4 bound; returns the first violation
  /// description ("ns=... key=... : ...") or nullopt. Exhaustive —
  /// test-sized tables only.
  std::optional<std::string> audit_violation() const;

  /// Folds the namespace into the key — the one mixing rule behind the
  /// shard index, the per-shard hash *and* the cluster HashRing's key
  /// points, so the three can never diverge.
  static std::uint64_t fold_key(NamespaceId ns, std::uint64_t key) {
    return key + 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(ns) + 1);
  }

 private:
  /// Immutable runtime form of a namespace: the resolved strategy object
  /// plus the derived caps. Shared between the registry and every entry of
  /// the namespace, so a reset cannot pull the strategy out from under an
  /// account that was created against the previous policy. `retired` is
  /// flipped when a reconfigure replaces this snapshot: account *creation*
  /// re-resolves on seeing it, so a request racing the reset can never
  /// insert a fresh account under the outgoing policy after the purge
  /// swept its shard (existing entries keep the old snapshot by design).
  struct Namespace {
    NamespaceId id = 0;
    NamespaceConfig config;
    std::unique_ptr<core::Strategy> strategy;
    Tokens capacity = 0;       ///< effective balance cap
    Tokens bucket_cap = 0;     ///< TokenAccount bucket cap (token bucket only)
    Tokens catchup_limit = 0;  ///< resolved max_catchup_ticks
    mutable std::atomic<bool> retired{false};
  };

  struct AccountKey {
    NamespaceId ns = 0;
    std::uint64_t key = 0;
    friend bool operator==(const AccountKey&, const AccountKey&) = default;
  };

  struct AccountKeyHash {
    std::size_t operator()(const AccountKey& k) const {
      std::uint64_t state = fold_key(k.ns, k.key);
      return static_cast<std::size_t>(util::splitmix64(state));
    }
  };

  struct Entry {
    core::TokenAccount account;
    std::shared_ptr<const Namespace> ns;  ///< keeps the strategy alive
    std::int64_t last_tick = 0;           ///< tick index last settled at
    TimeUs last_access_us = 0;            ///< for TTL eviction
    std::unique_ptr<core::RateLimitAuditor> auditor;
    // Replication state (unused until enable_replication; declared after
    // the original members so positional Entry construction stays valid).
    // The spend gate: the highest floor that a promoted follower might
    // still install — acquire never grants below it, which is what makes
    // a conservative replica install under-grant-only.
    Tokens repl_gate = 0;
    Tokens repl_sent_floor = 0;         ///< floor of the last emitted delta
    std::uint64_t repl_floor_seq = 0;   ///< emission round it travelled in
    bool repl_dirty = false;            ///< queued in Shard::repl_dirty?
    /// Online §3.4 auditor, present only on watchdog-sampled keys (see
    /// ServiceConfig::watchdog_sample). Guarded by the shard lock like
    /// everything else in the entry.
    std::unique_ptr<core::BurstWatchdog> watchdog;
  };

  /// Padded to a cache line so neighbouring shards' mutexes don't false-
  /// share under contention. Stats are broken out per namespace (with a
  /// one-slot cache so the hot path pays one hash lookup only on namespace
  /// switches); `stats.accounts` is unused per shard (the live count is
  /// accounts.size()).
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<AccountKey, Entry, AccountKeyHash> accounts;
    util::Rng rng{0};
    std::unordered_map<NamespaceId, TableStats> stats;
    NamespaceId cached_ns = 0;
    TableStats* cached_stats = nullptr;
    /// Space-saving top-k over this shard's acquire traffic (folded
    /// account ids), updated under the shard lock — a k-slot scan per
    /// acquire.
    obs::SpaceSaving hot{8};
    /// Accounts touched since the last drain_replica_dirty() (replication
    /// only; each account appears at most once — Entry::repl_dirty).
    std::vector<AccountKey> repl_dirty;
  };

  /// Scoped shard access: takes the shard mutex in the default striped-
  /// lock mode, and is a no-op in exclusive_shards mode (see
  /// ServiceConfig::exclusive_shards — the caller guarantees single
  /// accessor per shard there). Every shard touch goes through this guard,
  /// so both modes run the exact same data-path code.
  class ShardGuard {
   public:
    ShardGuard(const AccountTable& table, const Shard& shard)
        : mu_(table.config_.exclusive_shards ? nullptr : &shard.mu) {
      if (mu_ != nullptr) mu_->lock();
    }
    ~ShardGuard() {
      if (mu_ != nullptr) mu_->unlock();
    }
    ShardGuard(const ShardGuard&) = delete;
    ShardGuard& operator=(const ShardGuard&) = delete;

   private:
    std::mutex* mu_;
  };

  /// Builds and validates the runtime namespace object (throws
  /// util::InvariantError on an invalid policy).
  static std::shared_ptr<const Namespace> make_namespace(
      NamespaceId ns, const NamespaceConfig& config);

  /// One registry lookup per request; throws util::InvariantError on an
  /// unknown namespace.
  std::shared_ptr<const Namespace> resolve(NamespaceId ns) const;

  static TableStats& stats_for(Shard& shard, NamespaceId ns);
  std::size_t shard_index(NamespaceId ns, std::uint64_t key) const;
  Shard& shard_for(NamespaceId ns, std::uint64_t key);
  Entry& find_or_create(Shard& shard,
                        const std::shared_ptr<const Namespace>& ns,
                        std::uint64_t key, std::int64_t tick, TimeUs now);
  /// Replays elapsed ticks up to the cap (tick index derived from the
  /// entry's own namespace Δ); updates last_tick/last_access.
  void settle(Shard& shard, Entry& entry, TimeUs now);
  AcquireResult acquire_locked(Shard& shard,
                               const std::shared_ptr<const Namespace>& ns,
                               std::uint64_t key, Tokens n, std::int64_t tick,
                               TimeUs now);
  /// Queues (ns, key) for the next replica drain (no-op when replication
  /// is off or the entry is already queued). Caller holds the shard.
  void mark_repl_dirty(Shard& shard, NamespaceId ns, std::uint64_t key,
                       Entry& entry);
  /// Drops every account of `ns` (reset on reconfigure).
  void purge_namespace(NamespaceId ns);

  ServiceConfig config_;
  CoarseClock clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t shard_mask_ = 0;
  std::atomic<bool> repl_enabled_{false};
  std::atomic<Tokens> repl_headroom_{0};  ///< 0 = auto (half capacity)

  mutable std::shared_mutex ns_mu_;
  std::unordered_map<NamespaceId, std::shared_ptr<const Namespace>> namespaces_;
};

/// Wall-clock driver for a live tokend: a background thread that advances
/// the table's CoarseClock to the elapsed wall time every `resolution_us`
/// and runs idle-account eviction sweeps every min-TTL/4 (re-checked every
/// tick, so namespaces configured at runtime get their sweeps too).
class ClockDriver {
 public:
  explicit ClockDriver(AccountTable& table, TimeUs resolution_us = 1'000);

  /// Stops the thread if still running.
  ~ClockDriver();

  ClockDriver(const ClockDriver&) = delete;
  ClockDriver& operator=(const ClockDriver&) = delete;

  void start();
  /// Idempotent.
  void stop();

 private:
  void loop();

  AccountTable* table_;
  TimeUs resolution_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace toka::service
