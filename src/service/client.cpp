#include "service/client.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/promise.hpp"

namespace toka::service {

namespace {

/// Wraps a typed user callback into the type-erased Completion: unpacks
/// the expected response alternative, turns ErrorResponse frames into
/// protocol::RpcError, and maps the wire message to the caller's result.
template <typename RespT, typename ResultT, typename Map>
std::function<void(protocol::Response, std::exception_ptr)> make_completion(
    Client::Callback<ResultT> done, const char* what, Map map) {
  return [done = std::move(done), what, map = std::move(map)](
             protocol::Response response, std::exception_ptr error) {
    if (error) {
      done(ResultT{}, std::move(error));
      return;
    }
    if (const auto* err = std::get_if<protocol::ErrorResponse>(&response)) {
      if (err->code == protocol::ErrorCode::kOverloaded) {
        done(ResultT{},
             std::make_exception_ptr(protocol::OverloadedError(
                 err->retry_after_us,
                 std::string("tokend: server shed ") + what +
                     " under overload (retry after " +
                     std::to_string(err->retry_after_us) + "us)")));
        return;
      }
      done(ResultT{},
           std::make_exception_ptr(protocol::RpcError(
               err->code, std::string("tokend: server rejected ") + what +
                              ": " + protocol::to_string(err->code))));
      return;
    }
    if (const auto* redirect =
            std::get_if<protocol::RedirectResponse>(&response)) {
      done(ResultT{},
           std::make_exception_ptr(protocol::RedirectError(
               redirect->epoch, redirect->owner,
               std::string("tokend: node does not own the key for ") + what +
                   " (map epoch " + std::to_string(redirect->epoch) +
                   ", owner " + std::to_string(redirect->owner) + ")")));
      return;
    }
    RespT* msg = std::get_if<RespT>(&response);
    if (msg == nullptr) {
      done(ResultT{}, std::make_exception_ptr(util::IoError(
                          std::string("tokend: server answered with the wrong "
                                      "message type for ") +
                          what)));
      return;
    }
    ResultT result;
    try {
      result = map(std::move(*msg));
    } catch (...) {
      done(ResultT{}, std::current_exception());
      return;
    }
    done(std::move(result), nullptr);
  };
}

/// A future-backed callback: fulfils the shared promise either way.
template <typename T>
std::pair<std::future<T>, Client::Callback<T>> make_promise_pair() {
  return util::promise_pair<T>();
}

}  // namespace

Client::Client(runtime::Transport& transport, NodeId server, TimeUs timeout_us)
    : transport_(&transport),
      server_(server),
      timeout_us_(timeout_us),
      epoch_(std::chrono::steady_clock::now()) {
  TOKA_CHECK_MSG(timeout_us > 0,
                 "client timeout must be positive, got " << timeout_us);
  // The wheel ticks ~8x per default deadline: expiry is detected within
  // 1/8th of the timeout, and a sweep touches only one slot's entries.
  wheel_tick_us_ = std::clamp<TimeUs>(timeout_us_ / 8, 1'000, 50'000);
  wheel_.resize(kWheelSlots);
  sweeper_ = std::thread([this] { sweep_loop(); });
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
  transport_->set_peer_down_handler(
      [this](NodeId peer) { on_peer_down(peer); });
}

Client::~Client() {
  // Order matters: quiesce the receive paths first (after the detaches
  // return, no on_frame/on_peer_down is running or will run), then the
  // sweeper, then reject whatever is still registered — nothing can
  // complete it anymore.
  transport_->set_peer_down_handler({});
  transport_->set_handler({});
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    stop_sweeper_ = true;
  }
  sweep_cv_.notify_all();
  sweeper_.join();

  std::vector<Completion> orphans;
  {
    std::lock_guard lock(mu_);
    orphans.reserve(pending_.size());
    for (auto& [id, pending] : pending_) orphans.push_back(std::move(pending.done));
    pending_.clear();
    for (auto& slot : wheel_) slot.clear();
  }
  for (Completion& done : orphans) {
    done({}, std::make_exception_ptr(util::IoError(
                 "tokend client destroyed with the call outstanding")));
  }
}

TimeUs Client::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t Client::inflight() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

void Client::start_call(std::uint64_t id, std::vector<std::byte> frame,
                        Completion done, TimeUs timeout_us, bool data_op) {
  if (data_op) {
    const TimeUs until = suppress_until_us_.load(std::memory_order_relaxed);
    const TimeUs now = now_us();
    if (now < until) {
      // Backoff window is open: fail locally, never touching the wire —
      // the server already said no for this period.
      backoff_rejections_.fetch_add(1, std::memory_order_relaxed);
      done({}, std::make_exception_ptr(protocol::OverloadedError(
                   until - now,
                   "tokend: client backing off after server overload "
                   "(retry after " +
                       std::to_string(until - now) + "us)")));
      return;
    }
  }
  const TimeUs timeout = timeout_us > 0 ? timeout_us : timeout_us_;
  const TimeUs deadline = now_us() + timeout;
  {
    std::unique_lock lock(mu_);
    if (closed_) {
      lock.unlock();
      done({}, std::make_exception_ptr(
                   util::IoError("tokend client is shut down")));
      return;
    }
    pending_.emplace(id, Pending{std::move(done), deadline, timeout});
    wheel_[static_cast<std::size_t>(deadline / wheel_tick_us_) % kWheelSlots]
        .push_back(id);
  }
  // Send strictly after registering: a reply can arrive before send()
  // returns on a fast in-process fabric.
  transport_->send(server_, std::move(frame));
}

Client::Completion Client::traced_call(std::vector<std::byte>& frame,
                                       Completion done,
                                       const protocol::TraceContext* trace,
                                       NamespaceId ns, std::uint64_t key) {
  protocol::TraceContext ctx;
  if (trace != nullptr) {
    ctx = *trace;
  } else if (tracer_ != nullptr) {
    ctx = protocol::TraceContext{tracer_->next_trace_id(),
                                 tracer_->sample_next()};
  } else {
    return done;
  }
  protocol::attach_trace_context(frame, ctx);
  if (tracer_ == nullptr) return done;  // stamped for the server only
  obs::Tracer* tracer = tracer_;
  const std::int64_t t0 = obs::Tracer::now_us();
  return [done = std::move(done), tracer, ctx, ns, key,
          t0](protocol::Response response, std::exception_ptr error) {
    obs::Decision decision = obs::Decision::kNone;
    if (error != nullptr) {
      decision = obs::Decision::kError;
      try {
        std::rethrow_exception(error);
      } catch (const protocol::OverloadedError&) {
        decision = obs::Decision::kShed;
      } catch (...) {
      }
    }
    tracer->record(obs::Stage::kClient, decision, ctx.trace_id, key, ns, t0,
                   obs::Tracer::now_us() - t0, ctx.sampled);
    done(std::move(response), std::move(error));
  };
}

void Client::on_frame(NodeId from, std::vector<std::byte> payload) {
  if (from != server_) return;  // stray frame from elsewhere on the fabric
  protocol::Response response;
  try {
    response = protocol::decode_response(payload);
  } catch (const util::IoError&) {
    return;  // malformed reply: let the call's deadline handle it
  }
  const std::uint64_t id = protocol::request_id(response);
  if (const auto* err = std::get_if<protocol::ErrorResponse>(&response);
      err != nullptr && err->code == protocol::ErrorCode::kOverloaded) {
    // Open (or extend) the backoff window before completing the call, so a
    // completion-driven pipeline's next op is already suppressed.
    overloads_.fetch_add(1, std::memory_order_relaxed);
    const TimeUs until =
        now_us() + std::max<TimeUs>(err->retry_after_us, 0);
    TimeUs cur = suppress_until_us_.load(std::memory_order_relaxed);
    while (until > cur && !suppress_until_us_.compare_exchange_weak(
                              cur, until, std::memory_order_relaxed)) {
    }
  }
  Completion done;
  {
    std::lock_guard lock(mu_);
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // timed out or duplicate: drop
    done = std::move(it->second.done);
    pending_.erase(it);
    // The wheel still holds the id; the sweep skips ids with no slot.
  }
  // Completed outside the lock: the continuation may issue the pipeline's
  // next call (which takes mu_) or unblock a sync caller.
  done(std::move(response), nullptr);
}

void Client::on_peer_down(NodeId peer) {
  if (peer != server_) return;  // some other conversation on the fabric
  // The connection died: every in-flight call's reply is gone for good, so
  // reject them all now instead of letting each ripen into its own
  // timeout. New calls stay allowed — the transport reconnects lazily, and
  // a still-dead server fails them fast the same way.
  std::vector<Completion> dropped;
  {
    std::lock_guard lock(mu_);
    if (pending_.empty()) return;
    dropped.reserve(pending_.size());
    for (auto& [id, pending] : pending_)
      dropped.push_back(std::move(pending.done));
    pending_.clear();
    // Wheel entries for the dropped ids are swept harmlessly later.
  }
  disconnects_.fetch_add(1, std::memory_order_relaxed);
  for (Completion& done : dropped) {
    done({}, std::make_exception_ptr(util::IoError(
                 "tokend: connection closed by server " +
                 std::to_string(peer) + " with the call in flight")));
  }
}

std::size_t Client::sweep_pass(std::unique_lock<std::mutex>& lock) {
  const TimeUs now = now_us();
  const std::int64_t tick = now / wheel_tick_us_;
  // Sweep from the last swept tick *inclusive* (one cheap re-scan): a call
  // armed into the current tick after that slot's pass — any deadline
  // shorter than one wheel tick does this — must be caught on the next
  // pass, not a full rotation later. Bounded to one lap after a stall;
  // clamped at 0 so the first pass (swept_tick_ == -1) starts at slot 0.
  const std::int64_t first = std::max<std::int64_t>(
      std::max(swept_tick_, tick - static_cast<std::int64_t>(kWheelSlots) + 1),
      0);
  std::vector<std::pair<Completion, TimeUs>> expired;
  for (std::int64_t t = first; t <= tick; ++t) {
    std::vector<std::uint64_t>& slot =
        wheel_[static_cast<std::size_t>(t) % kWheelSlots];
    std::vector<std::uint64_t> keep;
    for (const std::uint64_t id : slot) {
      auto it = pending_.find(id);
      if (it == pending_.end()) continue;  // answered already
      if (it->second.deadline_us <= now) {
        expired.emplace_back(std::move(it->second.done),
                             it->second.timeout_us);
        pending_.erase(it);
      } else {
        keep.push_back(id);  // a later round of the wheel
      }
    }
    slot = std::move(keep);
  }
  swept_tick_ = tick;
  if (expired.empty()) return 0;
  lock.unlock();
  for (auto& [done, timeout] : expired) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    done({}, std::make_exception_ptr(
                 util::IoError("tokend call timed out after " +
                               std::to_string(timeout) + "us")));
  }
  lock.lock();
  return expired.size();
}

std::size_t Client::expire_overdue() {
  std::unique_lock lock(mu_);
  return sweep_pass(lock);
}

void Client::sweep_loop() {
  std::unique_lock lock(mu_);
  while (!stop_sweeper_) {
    sweep_cv_.wait_for(lock, std::chrono::microseconds(wheel_tick_us_),
                       [this] { return stop_sweeper_; });
    if (stop_sweeper_) return;
    sweep_pass(lock);
  }
}

// ----------------------------------------------------------------- data ops

void Client::acquire_async(NamespaceId ns, std::uint64_t key, Tokens n,
                           Callback<AcquireResult> done, TimeUs timeout_us,
                           const protocol::TraceContext* trace) {
  const std::uint64_t id = next_id();
  std::vector<std::byte> frame =
      protocol::encode(protocol::AcquireRequest{id, key, n, ns});
  Completion completion =
      traced_call(frame,
                  make_completion<protocol::AcquireResponse, AcquireResult>(
                      std::move(done), "acquire",
                      [](protocol::AcquireResponse resp) {
                        return AcquireResult{resp.granted, resp.balance};
                      }),
                  trace, ns, key);
  start_call(id, std::move(frame), std::move(completion), timeout_us,
             /*data_op=*/true);
}

std::future<AcquireResult> Client::acquire_async(NamespaceId ns,
                                                 std::uint64_t key, Tokens n,
                                                 TimeUs timeout_us) {
  auto [future, done] = make_promise_pair<AcquireResult>();
  acquire_async(ns, key, n, std::move(done), timeout_us);
  return std::move(future);
}

void Client::refund_async(NamespaceId ns, std::uint64_t key, Tokens n,
                          Callback<RefundResult> done, TimeUs timeout_us,
                          const protocol::TraceContext* trace) {
  const std::uint64_t id = next_id();
  std::vector<std::byte> frame =
      protocol::encode(protocol::RefundRequest{id, key, n, ns});
  Completion completion =
      traced_call(frame,
                  make_completion<protocol::RefundResponse, RefundResult>(
                      std::move(done), "refund",
                      [](protocol::RefundResponse resp) {
                        return RefundResult{resp.accepted, resp.balance};
                      }),
                  trace, ns, key);
  start_call(id, std::move(frame), std::move(completion), timeout_us,
             /*data_op=*/true);
}

std::future<RefundResult> Client::refund_async(NamespaceId ns,
                                               std::uint64_t key, Tokens n,
                                               TimeUs timeout_us) {
  auto [future, done] = make_promise_pair<RefundResult>();
  refund_async(ns, key, n, std::move(done), timeout_us);
  return std::move(future);
}

void Client::query_async(NamespaceId ns, std::uint64_t key,
                         Callback<QueryResult> done, TimeUs timeout_us,
                         const protocol::TraceContext* trace) {
  const std::uint64_t id = next_id();
  std::vector<std::byte> frame =
      protocol::encode(protocol::QueryRequest{id, key, ns});
  Completion completion =
      traced_call(frame,
                  make_completion<protocol::QueryResponse, QueryResult>(
                      std::move(done), "query",
                      [](protocol::QueryResponse resp) {
                        return QueryResult{resp.balance, resp.exists};
                      }),
                  trace, ns, key);
  start_call(id, std::move(frame), std::move(completion), timeout_us,
             /*data_op=*/true);
}

std::future<QueryResult> Client::query_async(NamespaceId ns,
                                             std::uint64_t key,
                                             TimeUs timeout_us) {
  auto [future, done] = make_promise_pair<QueryResult>();
  query_async(ns, key, std::move(done), timeout_us);
  return std::move(future);
}

void Client::acquire_batch_async(NamespaceId ns,
                                 std::span<const AcquireOp> ops,
                                 Callback<std::vector<AcquireResult>> done,
                                 TimeUs timeout_us,
                                 const protocol::TraceContext* trace) {
  const std::uint64_t id = next_id();
  protocol::BatchAcquireRequest request;
  request.id = id;
  request.ns = ns;
  request.ops.assign(ops.begin(), ops.end());
  const std::size_t expected = request.ops.size();
  // The batch's client span carries the first op's key — a batch is one
  // frame, one trace, and in the skewed workloads that trigger batching
  // the ops share the hot key anyway.
  const std::uint64_t span_key = ops.empty() ? 0 : ops.front().key;
  std::vector<std::byte> frame = protocol::encode(request);
  Completion completion = traced_call(
      frame,
      make_completion<protocol::BatchAcquireResponse,
                      std::vector<AcquireResult>>(
          std::move(done), "acquire_batch",
          [expected](protocol::BatchAcquireResponse resp) {
            if (resp.results.size() != expected)
              throw util::IoError("tokend: batch response has " +
                                  std::to_string(resp.results.size()) +
                                  " results for " + std::to_string(expected) +
                                  " ops");
            return std::move(resp.results);
          }),
      trace, ns, span_key);
  start_call(id, std::move(frame), std::move(completion), timeout_us,
             /*data_op=*/true);
}

std::future<std::vector<AcquireResult>> Client::acquire_batch_async(
    NamespaceId ns, std::span<const AcquireOp> ops, TimeUs timeout_us) {
  auto [future, done] = make_promise_pair<std::vector<AcquireResult>>();
  acquire_batch_async(ns, ops, std::move(done), timeout_us);
  return std::move(future);
}

// -------------------------------------------------------------------- admin

bool Client::configure_namespace(NamespaceId ns,
                                 const NamespaceConfig& config) {
  auto [future, done] = make_promise_pair<bool>();
  const std::uint64_t id = next_id();
  start_call(id,
             protocol::encode(protocol::ConfigureNamespaceRequest{id, ns,
                                                                  config}),
             make_completion<protocol::ConfigureNamespaceResponse, bool>(
                 std::move(done), "configure_namespace",
                 [](protocol::ConfigureNamespaceResponse resp) {
                   return resp.created;
                 }),
             /*timeout_us=*/0);
  return future.get();
}

void Client::fetch_cluster_map_async(Callback<cluster::ClusterMap> done,
                                     TimeUs timeout_us) {
  const std::uint64_t id = next_id();
  start_call(id, protocol::encode(protocol::ClusterMapRequest{id}),
             make_completion<protocol::ClusterMapResponse, cluster::ClusterMap>(
                 std::move(done), "cluster_map",
                 [](protocol::ClusterMapResponse resp) {
                   return std::move(resp.map);
                 }),
             timeout_us);
}

cluster::ClusterMap Client::fetch_cluster_map() {
  auto [future, done] = make_promise_pair<cluster::ClusterMap>();
  fetch_cluster_map_async(std::move(done));
  return future.get();
}

ApplyMapResult Client::apply_cluster_map(const cluster::ClusterMap& map) {
  auto [future, done] = make_promise_pair<ApplyMapResult>();
  const std::uint64_t id = next_id();
  start_call(id, protocol::encode(protocol::ApplyMapRequest{id, map}),
             make_completion<protocol::ApplyMapResponse, ApplyMapResult>(
                 std::move(done), "apply_cluster_map",
                 [](protocol::ApplyMapResponse resp) {
                   return ApplyMapResult{resp.accepted, resp.epoch,
                                         resp.handoffs};
                 }),
             /*timeout_us=*/0);
  return future.get();
}

void Client::stats_async(Callback<std::vector<protocol::StatsEntry>> done,
                         TimeUs timeout_us) {
  const std::uint64_t id = next_id();
  start_call(id, protocol::encode(protocol::StatsRequest{id}),
             make_completion<protocol::StatsResponse,
                             std::vector<protocol::StatsEntry>>(
                 std::move(done), "stats",
                 [](protocol::StatsResponse resp) {
                   return std::move(resp.entries);
                 }),
             timeout_us);
}

std::vector<protocol::StatsEntry> Client::stats() {
  auto [future, done] = make_promise_pair<std::vector<protocol::StatsEntry>>();
  stats_async(std::move(done));
  return future.get();
}

void Client::fetch_traces_async(std::uint32_t max_spans,
                                Callback<std::vector<protocol::TraceSpan>> done,
                                TimeUs timeout_us) {
  const std::uint64_t id = next_id();
  start_call(id, protocol::encode(protocol::TracesRequest{id, max_spans}),
             make_completion<protocol::TracesResponse,
                             std::vector<protocol::TraceSpan>>(
                 std::move(done), "traces",
                 [](protocol::TracesResponse resp) {
                   return std::move(resp.spans);
                 }),
             timeout_us);
}

std::vector<protocol::TraceSpan> Client::fetch_traces(std::uint32_t max_spans) {
  auto [future, done] = make_promise_pair<std::vector<protocol::TraceSpan>>();
  fetch_traces_async(max_spans, std::move(done));
  return future.get();
}

std::optional<NamespaceInfo> Client::namespace_info(NamespaceId ns) {
  auto [future, done] = make_promise_pair<std::optional<NamespaceInfo>>();
  const std::uint64_t id = next_id();
  start_call(
      id, protocol::encode(protocol::NamespaceInfoRequest{id, ns}),
      make_completion<protocol::NamespaceInfoResponse,
                      std::optional<NamespaceInfo>>(
          std::move(done), "namespace_info",
          [](protocol::NamespaceInfoResponse resp)
              -> std::optional<NamespaceInfo> {
            if (!resp.exists) return std::nullopt;
            return NamespaceInfo{resp.config, resp.capacity, resp.accounts};
          }),
      /*timeout_us=*/0);
  return future.get();
}

}  // namespace toka::service
