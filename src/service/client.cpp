#include "service/client.hpp"

#include <chrono>
#include <utility>

#include "util/error.hpp"

namespace toka::service {

Client::Client(runtime::Transport& transport, NodeId server, TimeUs timeout_us)
    : transport_(&transport), server_(server), timeout_us_(timeout_us) {
  TOKA_CHECK_MSG(timeout_us > 0,
                 "client timeout must be positive, got " << timeout_us);
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

Client::~Client() { transport_->set_handler({}); }

void Client::on_frame(NodeId from, std::vector<std::byte> payload) {
  if (from != server_) return;  // stray frame from elsewhere on the fabric
  protocol::Response response;
  try {
    response = protocol::decode_response(payload);
  } catch (const util::IoError&) {
    return;  // malformed reply: let the caller's timeout handle it
  }
  const std::uint64_t id = protocol::request_id(response);
  std::lock_guard lock(mu_);
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // timed out or duplicate: drop
  it->second = std::move(response);
  // Notify while still holding the lock: the waiter may destroy this
  // Client right after its call returns, and the woken waiter cannot
  // re-acquire mu_ (and thus return) until this thread has fully left
  // both the mutex and the condition variable.
  cv_.notify_all();
}

protocol::Response Client::call(std::uint64_t id, std::vector<std::byte> frame) {
  {
    std::lock_guard lock(mu_);
    pending_.emplace(id, std::nullopt);
  }
  transport_->send(server_, std::move(frame));
  std::unique_lock lock(mu_);
  const bool arrived = cv_.wait_for(
      lock, std::chrono::microseconds(timeout_us_),
      [&] { return pending_.at(id).has_value(); });
  if (!arrived) {
    pending_.erase(id);
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    throw util::IoError("tokend call " + std::to_string(id) +
                        " timed out after " + std::to_string(timeout_us_) +
                        "us");
  }
  protocol::Response response = std::move(*pending_.at(id));
  pending_.erase(id);
  return response;
}

namespace {
/// Extracts the expected alternative or reports a protocol breach.
template <typename T>
T expect(protocol::Response response, const char* what) {
  T* msg = std::get_if<T>(&response);
  if (msg == nullptr)
    throw util::IoError(std::string("tokend: server answered with the wrong "
                                    "message type for ") +
                        what);
  return std::move(*msg);
}
}  // namespace

AcquireResult Client::acquire(std::uint64_t key, Tokens n) {
  const std::uint64_t id = next_id();
  const auto resp = expect<protocol::AcquireResponse>(
      call(id, protocol::encode(protocol::AcquireRequest{id, key, n})),
      "acquire");
  return AcquireResult{resp.granted, resp.balance};
}

RefundResult Client::refund(std::uint64_t key, Tokens n) {
  const std::uint64_t id = next_id();
  const auto resp = expect<protocol::RefundResponse>(
      call(id, protocol::encode(protocol::RefundRequest{id, key, n})),
      "refund");
  return RefundResult{resp.accepted, resp.balance};
}

QueryResult Client::query(std::uint64_t key) {
  const std::uint64_t id = next_id();
  const auto resp = expect<protocol::QueryResponse>(
      call(id, protocol::encode(protocol::QueryRequest{id, key})), "query");
  return QueryResult{resp.balance, resp.exists};
}

std::vector<AcquireResult> Client::acquire_batch(
    std::span<const AcquireOp> ops) {
  const std::uint64_t id = next_id();
  protocol::BatchAcquireRequest request;
  request.id = id;
  request.ops.assign(ops.begin(), ops.end());
  auto resp = expect<protocol::BatchAcquireResponse>(
      call(id, protocol::encode(request)), "acquire_batch");
  if (resp.results.size() != ops.size())
    throw util::IoError("tokend: batch response has " +
                        std::to_string(resp.results.size()) + " results for " +
                        std::to_string(ops.size()) + " ops");
  return std::move(resp.results);
}

}  // namespace toka::service
