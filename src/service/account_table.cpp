#include "service/account_table.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>

#include "util/error.hpp"

namespace toka::service {

void CoarseClock::advance_to(TimeUs t) {
  TimeUs cur = now_.load(std::memory_order_relaxed);
  while (t > cur &&
         !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    // cur reloaded by the failed CAS; retry until t is not ahead anymore.
  }
}

void CoarseClock::advance(TimeUs dt) {
  TOKA_CHECK_MSG(dt >= 0, "clock cannot retreat, got dt=" << dt);
  advance_to(now_.load(std::memory_order_relaxed) + dt);
}

AccountTable::AccountTable(ServiceConfig config)
    : config_(std::move(config)), strategy_(core::make_strategy(config_.strategy)) {
  TOKA_CHECK_MSG(config_.delta_us > 0,
                 "token period must be positive, got " << config_.delta_us);
  // The effective balance cap: the framework capacity for the paper's
  // strategies, the bucket size for the classic token bucket (whose
  // framework capacity is unbounded — the account's bucket_cap enforces
  // the bound instead, as in the simulator).
  if (config_.strategy.kind == core::StrategyKind::kTokenBucket) {
    capacity_ = config_.strategy.c_param;
    bucket_cap_ = config_.strategy.c_param;
  } else {
    capacity_ = strategy_->capacity();
    bucket_cap_ = 0;
  }
  TOKA_CHECK_MSG(capacity_ != core::kUnboundedCapacity,
                 "the service requires a bounded-capacity strategy; "
                     << strategy_->name() << " has unbounded bursts");
  TOKA_CHECK_MSG(config_.initial_tokens >= 0 &&
                     config_.initial_tokens <= capacity_,
                 "initial balance " << config_.initial_tokens
                                    << " outside [0, C=" << capacity_ << "]");
  TOKA_CHECK_MSG(config_.idle_ttl_us >= 0,
                 "idle TTL must be non-negative, got " << config_.idle_ttl_us);
  catchup_limit_ = config_.max_catchup_ticks > 0
                       ? config_.max_catchup_ticks
                       : std::max<Tokens>(2 * capacity_, 16);

  const std::size_t shards = std::bit_ceil(std::max<std::size_t>(config_.shards, 1));
  shard_mask_ = shards - 1;
  util::Rng seeder(config_.seed);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng = seeder.fork(i);
    shards_.push_back(std::move(shard));
  }
}

std::size_t AccountTable::shard_index(std::uint64_t key) const {
  // splitmix64 finalizer: keys are caller-controlled, so the shard index
  // must not depend on low-entropy low bits.
  std::uint64_t state = key;
  return static_cast<std::size_t>(util::splitmix64(state)) & shard_mask_;
}

AccountTable::Shard& AccountTable::shard_for(std::uint64_t key) {
  return *shards_[shard_index(key)];
}

AccountTable::Entry& AccountTable::find_or_create(Shard& shard,
                                                  std::uint64_t key,
                                                  std::int64_t tick,
                                                  TimeUs now) {
  auto it = shard.accounts.find(key);
  if (it == shard.accounts.end()) {
    Entry entry{core::TokenAccount(*strategy_, config_.initial_tokens,
                                   /*allow_overdraft=*/false,
                                   core::RoundingMode::kRandomized,
                                   bucket_cap_),
                tick, now, nullptr};
    if (config_.audit) {
      entry.auditor = std::make_unique<core::RateLimitAuditor>(
          config_.delta_us, capacity_);
    }
    it = shard.accounts.emplace(key, std::move(entry)).first;
    ++shard.stats.accounts_created;
  }
  return it->second;
}

void AccountTable::settle(Shard& shard, Entry& entry, std::int64_t tick,
                          TimeUs now) {
  const std::int64_t due = tick - entry.last_tick;
  if (due > 0) {
    const std::int64_t apply = std::min<std::int64_t>(due, catchup_limit_);
    shard.stats.ticks_forfeited += static_cast<std::uint64_t>(due - apply);
    for (std::int64_t i = 0; i < apply; ++i) {
      // A proactive decision has no message to pay for here: the period's
      // token is dropped (never banked), exactly like the simulator's
      // no-online-peer rule, preserving balance <= C and with it §3.4.
      if (entry.account.on_tick(shard.rng)) ++shard.stats.proactive_dropped;
    }
    entry.last_tick = tick;
  }
  entry.last_access_us = now;
}

AcquireResult AccountTable::acquire_locked(Shard& shard, std::uint64_t key,
                                           Tokens n, std::int64_t tick,
                                           TimeUs now) {
  TOKA_CHECK_MSG(n >= 0, "acquire requires n >= 0, got " << n);
  Entry& entry = find_or_create(shard, key, tick, now);
  settle(shard, entry, tick, now);
  const Tokens granted = entry.account.try_spend(n);
  ++shard.stats.acquires;
  shard.stats.tokens_requested += static_cast<std::uint64_t>(n);
  shard.stats.tokens_granted += static_cast<std::uint64_t>(granted);
  if (entry.auditor) {
    for (Tokens i = 0; i < granted; ++i) entry.auditor->record(now);
  }
  return AcquireResult{granted, entry.account.balance()};
}

AcquireResult AccountTable::acquire(std::uint64_t key, Tokens n) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  // Read the clock only while holding the shard lock: lock ordering plus
  // atomic read coherence then guarantee non-decreasing times per account,
  // which settle()'s bookkeeping and the auditor's record() rely on.
  const TimeUs now = clock_.now_us();
  const std::int64_t tick = now / config_.delta_us;
  return acquire_locked(shard, key, n, tick, now);
}

RefundResult AccountTable::refund(std::uint64_t key, Tokens n) {
  TOKA_CHECK_MSG(n >= 0, "refund requires n >= 0, got " << n);
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  const TimeUs now = clock_.now_us();
  const std::int64_t tick = now / config_.delta_us;
  ++shard.stats.refunds;
  auto it = shard.accounts.find(key);
  if (it == shard.accounts.end()) {
    // Unknown or already-evicted account: the refund is dropped. Creating
    // an account here would let arbitrary keys mint balance from thin air.
    shard.stats.tokens_refund_dropped += static_cast<std::uint64_t>(n);
    return RefundResult{0, 0};
  }
  Entry& entry = it->second;
  settle(shard, entry, tick, now);
  // Cap at the capacity headroom: ticks banked since the acquire may have
  // refilled the balance, and a late refund must not push it past C (that
  // would mint burst allowance past the §3.4 bound). refund_spend further
  // caps at the spends still outstanding.
  const Tokens headroom =
      std::max<Tokens>(capacity_ - entry.account.balance(), 0);
  const Tokens accepted = entry.account.refund_spend(std::min(n, headroom));
  if (entry.auditor) {
    // The returned tokens' admissions never happened: strike them from the
    // audit trace so first_violation() checks *net* admissions. accepted
    // <= outstanding spends == recorded sends, so retract cannot underflow.
    entry.auditor->retract(static_cast<std::size_t>(accepted));
  }
  shard.stats.tokens_refunded += static_cast<std::uint64_t>(accepted);
  shard.stats.tokens_refund_dropped += static_cast<std::uint64_t>(n - accepted);
  return RefundResult{accepted, entry.account.balance()};
}

QueryResult AccountTable::query(std::uint64_t key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mu);
  const TimeUs now = clock_.now_us();
  const std::int64_t tick = now / config_.delta_us;
  ++shard.stats.queries;
  auto it = shard.accounts.find(key);
  if (it == shard.accounts.end()) return QueryResult{0, false};
  settle(shard, it->second, tick, now);
  return QueryResult{it->second.account.balance(), true};
}

std::vector<AcquireResult> AccountTable::acquire_batch(
    std::span<const AcquireOp> ops) {
  std::vector<AcquireResult> results(ops.size());
  // Order ops by shard so each touched shard is locked exactly once per
  // batch; within a shard the original op order is preserved (stable sort
  // by shard index via counting pairs).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (shard, op)
  order.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    order.emplace_back(static_cast<std::uint32_t>(shard_index(ops[i].key)),
                       static_cast<std::uint32_t>(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t shard_idx = order[i].first;
    Shard& shard = *shards_[shard_idx];
    std::lock_guard lock(shard.mu);
    // Clock read under the shard lock, as in acquire(): keeps per-account
    // times non-decreasing across concurrent batches.
    const TimeUs now = clock_.now_us();
    const std::int64_t tick = now / config_.delta_us;
    for (; i < order.size() && order[i].first == shard_idx; ++i) {
      const AcquireOp& op = ops[order[i].second];
      results[order[i].second] =
          acquire_locked(shard, op.key, op.tokens, tick, now);
    }
  }
  return results;
}

std::size_t AccountTable::evict_idle() {
  if (config_.idle_ttl_us == 0) return 0;
  const TimeUs now = clock_.now_us();
  std::size_t evicted = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    const std::size_t removed = std::erase_if(
        shard->accounts, [&](const auto& kv) {
          return now - kv.second.last_access_us >= config_.idle_ttl_us;
        });
    shard->stats.accounts_evicted += removed;
    evicted += removed;
  }
  return evicted;
}

std::size_t AccountTable::account_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    total += shard->accounts.size();
  }
  return total;
}

void TableStats::merge(const TableStats& other) {
  accounts += other.accounts;
  accounts_created += other.accounts_created;
  accounts_evicted += other.accounts_evicted;
  acquires += other.acquires;
  tokens_requested += other.tokens_requested;
  tokens_granted += other.tokens_granted;
  refunds += other.refunds;
  tokens_refunded += other.tokens_refunded;
  tokens_refund_dropped += other.tokens_refund_dropped;
  queries += other.queries;
  proactive_dropped += other.proactive_dropped;
  ticks_forfeited += other.ticks_forfeited;
}

TableStats AccountTable::stats() const {
  TableStats out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.merge(shard->stats);
    out.accounts += shard->accounts.size();
  }
  return out;
}

std::optional<std::string> AccountTable::audit_violation() const {
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    for (const auto& [key, entry] : shard->accounts) {
      if (!entry.auditor) continue;
      if (auto v = entry.auditor->first_violation()) {
        std::ostringstream os;
        os << "key=" << key << ": " << v->describe();
        return os.str();
      }
    }
  }
  return std::nullopt;
}

ClockDriver::ClockDriver(AccountTable& table, TimeUs resolution_us)
    : table_(&table), resolution_us_(resolution_us) {
  TOKA_CHECK_MSG(resolution_us > 0,
                 "clock resolution must be positive, got " << resolution_us);
}

ClockDriver::~ClockDriver() { stop(); }

void ClockDriver::start() {
  std::lock_guard lock(mu_);
  TOKA_CHECK_MSG(!running_, "clock driver already started");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void ClockDriver::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mu_);
  running_ = false;
}

void ClockDriver::loop() {
  const auto epoch = std::chrono::steady_clock::now();
  const TimeUs ttl = table_->config().idle_ttl_us;
  const TimeUs evict_every = ttl > 0 ? std::max(ttl / 4, resolution_us_) : 0;
  TimeUs next_evict = evict_every;
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(resolution_us_),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
    const TimeUs elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - epoch)
                               .count();
    table_->clock().advance_to(elapsed);
    if (evict_every > 0 && elapsed >= next_evict) {
      lock.unlock();  // sweeps take shard locks; don't hold ours across them
      table_->evict_idle();
      lock.lock();
      next_evict = elapsed + evict_every;
    }
  }
}

}  // namespace toka::service
