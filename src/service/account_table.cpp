#include "service/account_table.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/error.hpp"

namespace toka::service {

namespace {

// The watchdog sample set must not correlate with shard placement, which
// hashes splitmix64(fold_key) directly — salting the fold first gives an
// independent bit stream, so sampled keys land on every shard.
constexpr std::uint64_t kWatchdogSalt = 0xA24BAED4963EE407ULL;

bool watchdog_samples(std::uint64_t sample_every, NamespaceId ns,
                      std::uint64_t key) {
  if (sample_every == 0) return false;
  if (sample_every == 1) return true;
  std::uint64_t state = AccountTable::fold_key(ns, key) ^ kWatchdogSalt;
  return util::splitmix64(state) % sample_every == 0;
}

}  // namespace

void CoarseClock::advance_to(TimeUs t) {
  TimeUs cur = now_.load(std::memory_order_relaxed);
  while (t > cur &&
         !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    // cur reloaded by the failed CAS; retry until t is not ahead anymore.
  }
}

void CoarseClock::advance(TimeUs dt) {
  TOKA_CHECK_MSG(dt >= 0, "clock cannot retreat, got dt=" << dt);
  advance_to(now_.load(std::memory_order_relaxed) + dt);
}

std::shared_ptr<const AccountTable::Namespace> AccountTable::make_namespace(
    NamespaceId ns, const NamespaceConfig& config) {
  TOKA_CHECK_MSG(config.delta_us > 0,
                 "namespace " << ns << ": token period must be positive, got "
                              << config.delta_us);
  TOKA_CHECK_MSG(config.idle_ttl_us >= 0,
                 "namespace " << ns << ": idle TTL must be non-negative, got "
                              << config.idle_ttl_us);
  auto out = std::make_shared<Namespace>();
  out->id = ns;
  out->config = config;
  out->strategy = core::make_strategy(config.strategy);
  // The effective balance cap: the framework capacity for the paper's
  // strategies, the bucket size for the classic token bucket (whose
  // framework capacity is unbounded — the account's bucket_cap enforces
  // the bound instead, as in the simulator).
  if (config.strategy.kind == core::StrategyKind::kTokenBucket) {
    out->capacity = config.strategy.c_param;
    out->bucket_cap = config.strategy.c_param;
  } else {
    out->capacity = out->strategy->capacity();
    out->bucket_cap = 0;
  }
  TOKA_CHECK_MSG(out->capacity != core::kUnboundedCapacity,
                 "namespace " << ns
                              << ": the service requires a bounded-capacity "
                                 "strategy; "
                              << out->strategy->name()
                              << " has unbounded bursts");
  TOKA_CHECK_MSG(
      config.initial_tokens >= 0 && config.initial_tokens <= out->capacity,
      "namespace " << ns << ": initial balance " << config.initial_tokens
                   << " outside [0, C=" << out->capacity << "]");
  out->catchup_limit = config.max_catchup_ticks > 0
                           ? config.max_catchup_ticks
                           : std::max<Tokens>(2 * out->capacity, 16);
  return out;
}

AccountTable::AccountTable(ServiceConfig config) : config_(std::move(config)) {
  namespaces_.emplace(kDefaultNamespace,
                      make_namespace(kDefaultNamespace,
                                     config_.default_namespace()));
  const std::size_t shards =
      std::bit_ceil(std::max<std::size_t>(config_.shards, 1));
  shard_mask_ = shards - 1;
  util::Rng seeder(config_.seed);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->rng = seeder.fork(i);
    shards_.push_back(std::move(shard));
  }
}

bool AccountTable::configure_namespace(NamespaceId ns,
                                       const NamespaceConfig& config) {
  auto fresh = make_namespace(ns, config);  // validates before any mutation
  bool created;
  std::shared_ptr<const Namespace> old;
  {
    std::unique_lock lock(ns_mu_);
    auto [it, inserted] = namespaces_.try_emplace(ns, fresh);
    created = inserted;
    if (!inserted) {
      old = std::move(it->second);
      it->second = std::move(fresh);
    }
  }
  // Reset semantics on replace: retire the outgoing snapshot *before* the
  // purge, then drop the namespace's accounts so every key restarts under
  // the new policy from the initial balance (under-grants only). Requests
  // racing the reset may briefly finish against an existing entry under
  // the old policy — entries hold their Namespace alive — but account
  // *creation* re-resolves on a retired snapshot, so once the purge has
  // swept a shard no old-policy account can reappear in it: either the
  // insert happened before the retire flag (then the purge, serialized
  // behind the same shard lock, removes it) or the inserter saw the flag
  // and created under the new policy.
  if (!created) {
    old->retired.store(true, std::memory_order_release);
    purge_namespace(ns);
  }
  return created;
}

void AccountTable::purge_namespace(NamespaceId ns) {
  for (auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    const std::size_t removed = std::erase_if(
        shard->accounts,
        [&](const auto& kv) { return kv.first.ns == ns; });
    stats_for(*shard, ns).accounts_evicted += removed;
  }
}

bool AccountTable::has_namespace(NamespaceId ns) const {
  std::shared_lock lock(ns_mu_);
  return namespaces_.contains(ns);
}

std::size_t AccountTable::namespace_count() const {
  std::shared_lock lock(ns_mu_);
  return namespaces_.size();
}

std::optional<NamespaceInfo> AccountTable::namespace_info(
    NamespaceId ns) const {
  std::shared_ptr<const Namespace> nsp;
  {
    std::shared_lock lock(ns_mu_);
    auto it = namespaces_.find(ns);
    if (it == namespaces_.end()) return std::nullopt;
    nsp = it->second;
  }
  NamespaceInfo info;
  info.config = nsp->config;
  info.capacity = nsp->capacity;
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    for (const auto& [key, entry] : shard->accounts) {
      if (key.ns == ns) ++info.accounts;
    }
  }
  return info;
}

TimeUs AccountTable::min_idle_ttl_us() const {
  std::shared_lock lock(ns_mu_);
  TimeUs min_ttl = 0;
  for (const auto& [id, nsp] : namespaces_) {
    const TimeUs ttl = nsp->config.idle_ttl_us;
    if (ttl > 0 && (min_ttl == 0 || ttl < min_ttl)) min_ttl = ttl;
  }
  return min_ttl;
}

Tokens AccountTable::capacity_bound(NamespaceId ns) const {
  return resolve(ns)->capacity;
}

std::shared_ptr<const AccountTable::Namespace> AccountTable::resolve(
    NamespaceId ns) const {
  std::shared_lock lock(ns_mu_);
  auto it = namespaces_.find(ns);
  TOKA_CHECK_MSG(it != namespaces_.end(),
                 "unknown namespace " << ns
                                      << " (the server answers typed errors; "
                                         "direct callers must create it first)");
  return it->second;
}

TableStats& AccountTable::stats_for(Shard& shard, NamespaceId ns) {
  // One-slot cache: unordered_map values are node-stable, so the pointer
  // survives later insertions for other namespaces.
  if (shard.cached_stats != nullptr && shard.cached_ns == ns)
    return *shard.cached_stats;
  TableStats& stats = shard.stats[ns];
  shard.cached_ns = ns;
  shard.cached_stats = &stats;
  return stats;
}

std::size_t AccountTable::shard_index(NamespaceId ns, std::uint64_t key) const {
  // splitmix64 finalizer: keys are caller-controlled, so the shard index
  // must not depend on low-entropy low bits. The namespace is folded in so
  // the same key in two namespaces lands on (usually) different shards.
  std::uint64_t state = fold_key(ns, key);
  return static_cast<std::size_t>(util::splitmix64(state)) & shard_mask_;
}

AccountTable::Shard& AccountTable::shard_for(NamespaceId ns,
                                             std::uint64_t key) {
  return *shards_[shard_index(ns, key)];
}

AccountTable::Entry& AccountTable::find_or_create(
    Shard& shard, const std::shared_ptr<const Namespace>& ns,
    std::uint64_t key, std::int64_t tick, TimeUs now) {
  const AccountKey account_key{ns->id, key};
  auto it = shard.accounts.find(account_key);
  if (it == shard.accounts.end()) {
    // Creation re-resolves a retired snapshot (taking ns_mu_ shared while
    // holding the shard lock is safe: configure_namespace never holds
    // shard locks under ns_mu_). See Namespace::retired for why this
    // closes the reset/acquire resurrection race.
    std::shared_ptr<const Namespace> current = ns;
    while (current->retired.load(std::memory_order_acquire)) {
      current = resolve(current->id);
      tick = now / current->config.delta_us;
    }
    Entry entry{core::TokenAccount(*current->strategy,
                                   current->config.initial_tokens,
                                   /*allow_overdraft=*/false,
                                   core::RoundingMode::kRandomized,
                                   current->bucket_cap),
                current, tick, now, nullptr, 0, 0, 0, false, nullptr};
    if (current->config.audit) {
      entry.auditor = std::make_unique<core::RateLimitAuditor>(
          current->config.delta_us, current->capacity);
    }
    if (watchdog_samples(config_.watchdog_sample, current->id, key)) {
      entry.watchdog = std::make_unique<core::BurstWatchdog>(
          current->config.delta_us, current->capacity);
    }
    it = shard.accounts.emplace(account_key, std::move(entry)).first;
    ++stats_for(shard, current->id).accounts_created;
  }
  return it->second;
}

void AccountTable::settle(Shard& shard, Entry& entry, TimeUs now) {
  // The tick index comes from the *entry's own* namespace snapshot: an
  // entry surviving a racing reconfigure has a last_tick recorded under
  // the old Δ, and dividing `now` by the new Δ would fabricate (or eat)
  // elapsed ticks — a shrunk Δ would instantly refill the account past
  // what real time banked, breaking the "reset only under-grants" rule.
  const std::int64_t tick = now / entry.ns->config.delta_us;
  const std::int64_t due = tick - entry.last_tick;
  if (due > 0) {
    const std::int64_t apply =
        std::min<std::int64_t>(due, entry.ns->catchup_limit);
    TableStats& stats = stats_for(shard, entry.ns->id);
    stats.ticks_forfeited += static_cast<std::uint64_t>(due - apply);
    for (std::int64_t i = 0; i < apply; ++i) {
      // A proactive decision has no message to pay for here: the period's
      // token is dropped (never banked), exactly like the simulator's
      // no-online-peer rule, preserving balance <= C and with it §3.4.
      if (entry.account.on_tick(shard.rng)) ++stats.proactive_dropped;
    }
    entry.last_tick = tick;
  }
  entry.last_access_us = now;
}

AcquireResult AccountTable::acquire_locked(
    Shard& shard, const std::shared_ptr<const Namespace>& ns,
    std::uint64_t key, Tokens n, std::int64_t tick, TimeUs now) {
  TOKA_CHECK_MSG(n >= 0, "acquire requires n >= 0, got " << n);
  Entry& entry = find_or_create(shard, ns, key, tick, now);
  // Balance before this call's settle: a grant within it was banked; a
  // grant beyond it spent tokens the settle just minted ("fresh").
  const Tokens banked = entry.account.balance();
  settle(shard, entry, now);
  Tokens want = n;
  if (repl_enabled_.load(std::memory_order_relaxed)) {
    // The spend gate: never grant below the highest floor a promoted
    // follower might still install. Grants above the gated headroom wait
    // for the stream to catch up (the gate collapses on ack in
    // drain_replica_dirty) — the availability price of the never-duplicate
    // guarantee under failover.
    const Tokens spendable =
        std::max<Tokens>(entry.account.balance() - entry.repl_gate, 0);
    want = std::min(want, spendable);
  }
  const Tokens granted = entry.account.try_spend(want);
  mark_repl_dirty(shard, ns->id, key, entry);
  TableStats& stats = stats_for(shard, ns->id);
  ++stats.acquires;
  stats.tokens_requested += static_cast<std::uint64_t>(n);
  stats.tokens_granted += static_cast<std::uint64_t>(granted);
  shard.hot.record(fold_key(ns->id, key));
  if (entry.auditor) {
    for (Tokens i = 0; i < granted; ++i) entry.auditor->record(now);
  }
  if (entry.watchdog && granted > 0) {
    const std::uint64_t before = entry.watchdog->checks();
    stats.watchdog_violations += entry.watchdog->record(now, granted);
    stats.watchdog_checks += entry.watchdog->checks() - before;
  }
  return AcquireResult{granted, entry.account.balance(), granted > banked};
}

AcquireResult AccountTable::acquire(NamespaceId ns, std::uint64_t key,
                                    Tokens n) {
  // Resolve the namespace once: strategy, Δ (the clock divisor) and
  // capacity all come out of this one registry lookup.
  const std::shared_ptr<const Namespace> nsp = resolve(ns);
  Shard& shard = shard_for(ns, key);
  ShardGuard lock(*this, shard);
  // Read the clock only while holding the shard lock: lock ordering plus
  // atomic read coherence then guarantee non-decreasing times per account,
  // which settle()'s bookkeeping and the auditor's record() rely on.
  const TimeUs now = clock_.now_us();
  const std::int64_t tick = now / nsp->config.delta_us;
  return acquire_locked(shard, nsp, key, n, tick, now);
}

RefundResult AccountTable::refund(NamespaceId ns, std::uint64_t key,
                                  Tokens n) {
  TOKA_CHECK_MSG(n >= 0, "refund requires n >= 0, got " << n);
  resolve(ns);  // reject unknown namespaces before touching the shard
  Shard& shard = shard_for(ns, key);
  ShardGuard lock(*this, shard);
  const TimeUs now = clock_.now_us();
  TableStats& stats = stats_for(shard, ns);
  ++stats.refunds;
  auto it = shard.accounts.find(AccountKey{ns, key});
  if (it == shard.accounts.end()) {
    // Unknown or already-evicted account: the refund is dropped. Creating
    // an account here would let arbitrary keys mint balance from thin air.
    // The event counter (as opposed to the token count below) is what the
    // telemetry exports: a climbing refunds_dropped means callers are
    // refunding keys the table no longer knows — a TTL tuned too tight or
    // a buggy caller, either way worth seeing.
    ++stats.refunds_dropped;
    stats.tokens_refund_dropped += static_cast<std::uint64_t>(n);
    return RefundResult{0, 0};
  }
  Entry& entry = it->second;
  settle(shard, entry, now);
  // Cap at the capacity headroom: ticks banked since the acquire may have
  // refilled the balance, and a late refund must not push it past C (that
  // would mint burst allowance past the §3.4 bound). refund_spend further
  // caps at the spends still outstanding. The caps come from the entry's
  // own namespace snapshot, so accounts racing a reconfigure stay within
  // the policy they were created under.
  const Tokens headroom =
      std::max<Tokens>(entry.ns->capacity - entry.account.balance(), 0);
  const Tokens accepted = entry.account.refund_spend(std::min(n, headroom));
  mark_repl_dirty(shard, ns, key, entry);
  if (entry.auditor) {
    // The returned tokens' admissions never happened: strike them from the
    // audit trace so first_violation() checks *net* admissions. accepted
    // <= outstanding spends == recorded sends, so retract cannot underflow.
    entry.auditor->retract(static_cast<std::size_t>(accepted));
  }
  if (entry.watchdog) entry.watchdog->retract(accepted);
  stats.tokens_refunded += static_cast<std::uint64_t>(accepted);
  stats.tokens_refund_dropped += static_cast<std::uint64_t>(n - accepted);
  return RefundResult{accepted, entry.account.balance()};
}

QueryResult AccountTable::query(NamespaceId ns, std::uint64_t key) {
  resolve(ns);  // reject unknown namespaces before touching the shard
  Shard& shard = shard_for(ns, key);
  ShardGuard lock(*this, shard);
  const TimeUs now = clock_.now_us();
  ++stats_for(shard, ns).queries;
  auto it = shard.accounts.find(AccountKey{ns, key});
  if (it == shard.accounts.end()) return QueryResult{0, false};
  settle(shard, it->second, now);
  return QueryResult{it->second.account.balance(), true};
}

std::vector<AcquireResult> AccountTable::acquire_batch(
    NamespaceId ns, std::span<const AcquireOp> ops) {
  const std::shared_ptr<const Namespace> nsp = resolve(ns);
  std::vector<AcquireResult> results(ops.size());
  // Order ops by shard so each touched shard is locked exactly once per
  // batch; within a shard the original op order is preserved (stable sort
  // by shard index via counting pairs).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> order;  // (shard, op)
  order.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    order.emplace_back(static_cast<std::uint32_t>(shard_index(ns, ops[i].key)),
                       static_cast<std::uint32_t>(i));
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t i = 0;
  while (i < order.size()) {
    const std::uint32_t shard_idx = order[i].first;
    Shard& shard = *shards_[shard_idx];
    ShardGuard lock(*this, shard);
    // Clock read under the shard lock, as in acquire(): keeps per-account
    // times non-decreasing across concurrent batches.
    const TimeUs now = clock_.now_us();
    const std::int64_t tick = now / nsp->config.delta_us;
    for (; i < order.size() && order[i].first == shard_idx; ++i) {
      const AcquireOp& op = ops[order[i].second];
      results[order[i].second] =
          acquire_locked(shard, nsp, op.key, op.tokens, tick, now);
    }
  }
  return results;
}

std::size_t AccountTable::evict_idle() {
  if (min_idle_ttl_us() == 0) return 0;
  std::size_t evicted = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    evicted += evict_idle_shard(i);
  return evicted;
}

std::size_t AccountTable::evict_idle_shard(std::size_t shard_idx) {
  TOKA_CHECK_MSG(shard_idx < shards_.size(),
                 "shard index " << shard_idx << " out of range");
  Shard& shard = *shards_[shard_idx];
  const TimeUs now = clock_.now_us();
  ShardGuard lock(*this, shard);
  std::size_t removed_here = 0;
  for (auto it = shard.accounts.begin(); it != shard.accounts.end();) {
    const TimeUs ttl = it->second.ns->config.idle_ttl_us;
    const TimeUs idle = now - it->second.last_access_us;
    // A nonzero banked balance earns a grace window up to 2x the TTL:
    // evicting at the TTL would drop the account — and with it any
    // refund still in flight for its outstanding grants — the moment it
    // goes quiet. The balance read is the unsettled banked value, which
    // only errs on the side of keeping the account.
    const bool expired =
        ttl > 0 && idle >= ttl &&
        (it->second.account.balance() == 0 || idle >= 2 * ttl);
    if (expired) {
      ++stats_for(shard, it->first.ns).accounts_evicted;
      it = shard.accounts.erase(it);
      ++removed_here;
    } else {
      ++it;
    }
  }
  return removed_here;
}

std::vector<AccountExport> AccountTable::extract_if(
    const std::function<bool(NamespaceId, std::uint64_t)>& should_extract) {
  std::vector<AccountExport> out;
  for (auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    for (auto it = shard->accounts.begin(); it != shard->accounts.end();) {
      if (should_extract(it->first.ns, it->first.key)) {
        // Only the banked balance travels; unsettled elapsed ticks are
        // forfeited (the receiver settles at its own clock). The balance
        // can never exceed the account's own capacity, so the export is
        // a legitimate §3.4 bank wherever it lands.
        out.push_back(AccountExport{it->first.ns, it->first.key,
                                    it->second.account.balance()});
        ++stats_for(*shard, it->first.ns).accounts_extracted;
        it = shard->accounts.erase(it);
      } else {
        ++it;
      }
    }
  }
  return out;
}

bool AccountTable::install_account(NamespaceId ns, std::uint64_t key,
                                   Tokens balance) {
  std::shared_ptr<const Namespace> nsp;
  {
    std::shared_lock lock(ns_mu_);
    auto it = namespaces_.find(ns);
    if (it == namespaces_.end()) return false;  // unknown here: forfeit
    nsp = it->second;
  }
  Shard& shard = shard_for(ns, key);
  ShardGuard lock(*this, shard);
  while (nsp->retired.load(std::memory_order_acquire)) nsp = resolve(ns);
  const AccountKey account_key{ns, key};
  if (shard.accounts.contains(account_key)) return false;  // never duplicate
  const TimeUs now = clock_.now_us();
  const std::int64_t tick = now / nsp->config.delta_us;
  const Tokens clamped = std::clamp<Tokens>(balance, 0, nsp->capacity);
  Entry entry{core::TokenAccount(*nsp->strategy, clamped,
                                 /*allow_overdraft=*/false,
                                 core::RoundingMode::kRandomized,
                                 nsp->bucket_cap),
              nsp, tick, now, nullptr, 0, 0, 0, false, nullptr};
  if (nsp->config.audit) {
    // The trace restarts empty: the installed balance is at most C, so
    // spending it all at once still fits the fresh window's 1 + C slack.
    entry.auditor = std::make_unique<core::RateLimitAuditor>(
        nsp->config.delta_us, nsp->capacity);
  }
  if (watchdog_samples(config_.watchdog_sample, ns, key)) {
    // Same empty-trace argument as the auditor above: the installed bank
    // fits the first window's 1 + C slack, so the watchdog restarts clean.
    entry.watchdog = std::make_unique<core::BurstWatchdog>(
        nsp->config.delta_us, nsp->capacity);
  }
  auto slot = shard.accounts.emplace(account_key, std::move(entry)).first;
  mark_repl_dirty(shard, ns, key, slot->second);
  TableStats& stats = stats_for(shard, ns);
  ++stats.accounts_created;
  ++stats.accounts_installed;
  return true;
}

void AccountTable::enable_replication(Tokens headroom) {
  TOKA_CHECK_MSG(headroom >= 0,
                 "replication headroom must be non-negative, got " << headroom);
  repl_headroom_.store(headroom, std::memory_order_relaxed);
  repl_enabled_.store(true, std::memory_order_release);
}

void AccountTable::mark_repl_dirty(Shard& shard, NamespaceId ns,
                                   std::uint64_t key, Entry& entry) {
  if (!repl_enabled_.load(std::memory_order_relaxed) || entry.repl_dirty)
    return;
  entry.repl_dirty = true;
  shard.repl_dirty.push_back(AccountKey{ns, key});
}

std::size_t AccountTable::drain_replica_dirty(
    std::size_t shard_idx, std::uint64_t seq, std::uint64_t acked_seq,
    std::vector<ReplicaDeltaExport>& out) {
  TOKA_CHECK_MSG(shard_idx < shards_.size(),
                 "shard index " << shard_idx << " out of range");
  Shard& shard = *shards_[shard_idx];
  ShardGuard lock(*this, shard);
  std::size_t appended = 0;
  for (const AccountKey& k : shard.repl_dirty) {
    auto it = shard.accounts.find(k);
    if (it == shard.accounts.end()) continue;  // evicted or extracted since
    Entry& entry = it->second;
    entry.repl_dirty = false;
    // Gate collapse: once the last sent floor is acked, the follower's
    // installable floor is exactly that value — every older (possibly
    // higher) floor has been superseded on an ordered stream — so the
    // gate drops to it and the headroom above it becomes spendable again.
    if (entry.repl_floor_seq != 0 && entry.repl_floor_seq <= acked_seq)
      entry.repl_gate = entry.repl_sent_floor;
    const Tokens balance = entry.account.balance();
    const Tokens configured = repl_headroom_.load(std::memory_order_relaxed);
    const Tokens h =
        configured > 0 ? configured : (entry.ns->capacity + 1) / 2;
    const Tokens floor = std::max<Tokens>(balance - h, 0);
    entry.repl_sent_floor = floor;
    entry.repl_floor_seq = seq;
    entry.repl_gate = std::max(entry.repl_gate, floor);
    out.push_back(ReplicaDeltaExport{k.ns, k.key, balance, floor});
    ++appended;
  }
  shard.repl_dirty.clear();
  return appended;
}

std::size_t AccountTable::account_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    total += shard->accounts.size();
  }
  return total;
}

std::vector<AccountTable::HotKey> AccountTable::hot_keys(std::size_t n) const {
  // Merge the per-shard sketches by folded id (an id lives in exactly one
  // shard, so this is a concatenation, not a sum).
  std::vector<HotKey> all;
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    for (const obs::SpaceSaving::HeavyHitter& h : shard->hot.top())
      all.push_back(HotKey{h.item, h.count});
  }
  std::sort(all.begin(), all.end(),
            [](const HotKey& a, const HotKey& b) { return a.count > b.count; });
  if (all.size() > n) all.resize(n);
  return all;
}

void TableStats::merge(const TableStats& other) {
  accounts += other.accounts;
  accounts_created += other.accounts_created;
  accounts_evicted += other.accounts_evicted;
  acquires += other.acquires;
  tokens_requested += other.tokens_requested;
  tokens_granted += other.tokens_granted;
  refunds += other.refunds;
  tokens_refunded += other.tokens_refunded;
  tokens_refund_dropped += other.tokens_refund_dropped;
  refunds_dropped += other.refunds_dropped;
  queries += other.queries;
  proactive_dropped += other.proactive_dropped;
  ticks_forfeited += other.ticks_forfeited;
  accounts_extracted += other.accounts_extracted;
  accounts_installed += other.accounts_installed;
  watchdog_checks += other.watchdog_checks;
  watchdog_violations += other.watchdog_violations;
}

TableStats AccountTable::stats() const {
  TableStats out;
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    for (const auto& [ns, stats] : shard->stats) out.merge(stats);
    out.accounts += shard->accounts.size();
  }
  return out;
}

TableStats AccountTable::stats(NamespaceId ns) const {
  TableStats out;
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    auto it = shard->stats.find(ns);
    if (it != shard->stats.end()) out.merge(it->second);
    for (const auto& [key, entry] : shard->accounts) {
      if (key.ns == ns) ++out.accounts;
    }
  }
  return out;
}

std::optional<std::string> AccountTable::audit_violation() const {
  for (const auto& shard : shards_) {
    ShardGuard lock(*this, *shard);
    for (const auto& [key, entry] : shard->accounts) {
      if (!entry.auditor) continue;
      if (auto v = entry.auditor->first_violation()) {
        std::ostringstream os;
        os << "ns=" << key.ns << " key=" << key.key << ": " << v->describe();
        return os.str();
      }
    }
  }
  return std::nullopt;
}

ClockDriver::ClockDriver(AccountTable& table, TimeUs resolution_us)
    : table_(&table), resolution_us_(resolution_us) {
  TOKA_CHECK_MSG(resolution_us > 0,
                 "clock resolution must be positive, got " << resolution_us);
}

ClockDriver::~ClockDriver() { stop(); }

void ClockDriver::start() {
  std::lock_guard lock(mu_);
  TOKA_CHECK_MSG(!running_, "clock driver already started");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void ClockDriver::stop() {
  {
    std::lock_guard lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard lock(mu_);
  running_ = false;
}

void ClockDriver::loop() {
  const auto epoch = std::chrono::steady_clock::now();
  TimeUs next_evict = 0;
  std::unique_lock lock(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::microseconds(resolution_us_),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
    const TimeUs elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now() - epoch)
                               .count();
    table_->clock().advance_to(elapsed);
    // The min TTL is re-read every tick: namespaces created at runtime with
    // a TTL start getting sweeps without a driver restart. In
    // exclusive_shards mode the sweep is the shard owners' job (the
    // ShardEngine workers evict their own shards) — a driver sweep here
    // would race them, so the driver only advances the clock.
    if (table_->config().exclusive_shards) continue;
    const TimeUs ttl = table_->min_idle_ttl_us();
    if (ttl > 0 && elapsed >= next_evict) {
      lock.unlock();  // sweeps take shard locks; don't hold ours across them
      table_->evict_idle();
      lock.lock();
      next_evict = elapsed + std::max(ttl / 4, resolution_us_);
    }
  }
}

}  // namespace toka::service
