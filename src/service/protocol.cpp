#include "service/protocol.hpp"

#include "util/error.hpp"
#include "util/serde.hpp"

namespace toka::service::protocol {

namespace {

util::BinaryWriter header(MsgType type, bool response, std::uint64_t id) {
  util::BinaryWriter w;
  w.u8(kProtocolVersion);
  w.u8(static_cast<std::uint8_t>(type) | (response ? kResponseBit : 0));
  w.u64(id);
  return w;
}

Tokens read_tokens(util::BinaryReader& r) {
  const Tokens n = r.i64();
  if (n < 0) throw util::IoError("tokend frame: negative token count");
  return n;
}

std::uint32_t read_batch_count(util::BinaryReader& r) {
  const std::uint32_t count = r.u32();
  if (count > kMaxBatchOps)
    throw util::IoError("tokend frame: batch of " + std::to_string(count) +
                        " ops exceeds the limit");
  return count;
}

/// Consumes the common header and returns the raw type byte.
std::uint8_t read_header(util::BinaryReader& r) {
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersion)
    throw util::IoError("tokend frame: unsupported protocol version " +
                        std::to_string(version));
  return r.u8();
}

void expect_done(const util::BinaryReader& r) {
  if (!r.done())
    throw util::IoError("tokend frame: " + std::to_string(r.remaining()) +
                        " trailing bytes");
}

}  // namespace

std::vector<std::byte> encode(const AcquireRequest& m) {
  util::BinaryWriter w = header(MsgType::kAcquire, false, m.id);
  w.u64(m.key);
  w.i64(m.tokens);
  return w.take();
}

std::vector<std::byte> encode(const AcquireResponse& m) {
  util::BinaryWriter w = header(MsgType::kAcquire, true, m.id);
  w.i64(m.granted);
  w.i64(m.balance);
  return w.take();
}

std::vector<std::byte> encode(const RefundRequest& m) {
  util::BinaryWriter w = header(MsgType::kRefund, false, m.id);
  w.u64(m.key);
  w.i64(m.tokens);
  return w.take();
}

std::vector<std::byte> encode(const RefundResponse& m) {
  util::BinaryWriter w = header(MsgType::kRefund, true, m.id);
  w.i64(m.accepted);
  w.i64(m.balance);
  return w.take();
}

std::vector<std::byte> encode(const QueryRequest& m) {
  util::BinaryWriter w = header(MsgType::kQuery, false, m.id);
  w.u64(m.key);
  return w.take();
}

std::vector<std::byte> encode(const QueryResponse& m) {
  util::BinaryWriter w = header(MsgType::kQuery, true, m.id);
  w.i64(m.balance);
  w.u8(m.exists ? 1 : 0);
  return w.take();
}

std::vector<std::byte> encode(const BatchAcquireRequest& m) {
  // Fail fast on the sender: a frame above the batch limit would only be
  // dropped as malformed by the receiver, surfacing as a timeout.
  TOKA_CHECK_MSG(m.ops.size() <= kMaxBatchOps,
                 "batch of " << m.ops.size() << " ops exceeds the limit of "
                             << kMaxBatchOps);
  util::BinaryWriter w = header(MsgType::kBatchAcquire, false, m.id);
  w.u32(static_cast<std::uint32_t>(m.ops.size()));
  for (const AcquireOp& op : m.ops) {
    w.u64(op.key);
    w.i64(op.tokens);
  }
  return w.take();
}

std::vector<std::byte> encode(const BatchAcquireResponse& m) {
  TOKA_CHECK_MSG(m.results.size() <= kMaxBatchOps,
                 "batch of " << m.results.size()
                             << " results exceeds the limit of "
                             << kMaxBatchOps);
  util::BinaryWriter w = header(MsgType::kBatchAcquire, true, m.id);
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const AcquireResult& res : m.results) {
    w.i64(res.granted);
    w.i64(res.balance);
  }
  return w.take();
}

std::vector<std::byte> encode(const Request& m) {
  return std::visit([](const auto& msg) { return encode(msg); }, m);
}

std::vector<std::byte> encode(const Response& m) {
  return std::visit([](const auto& msg) { return encode(msg); }, m);
}

Request decode_request(std::span<const std::byte> payload) {
  util::BinaryReader r(payload);
  const std::uint8_t type = read_header(r);
  const std::uint64_t id = r.u64();
  Request out;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kAcquire: {
      AcquireRequest m{id, r.u64(), read_tokens(r)};
      out = m;
      break;
    }
    case MsgType::kRefund: {
      RefundRequest m{id, r.u64(), read_tokens(r)};
      out = m;
      break;
    }
    case MsgType::kQuery: {
      out = QueryRequest{id, r.u64()};
      break;
    }
    case MsgType::kBatchAcquire: {
      BatchAcquireRequest m;
      m.id = id;
      const std::uint32_t count = read_batch_count(r);
      m.ops.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t key = r.u64();
        m.ops.push_back(AcquireOp{key, read_tokens(r)});
      }
      out = std::move(m);
      break;
    }
    default:
      throw util::IoError("tokend frame: unknown request type " +
                          std::to_string(type));
  }
  expect_done(r);
  return out;
}

Response decode_response(std::span<const std::byte> payload) {
  util::BinaryReader r(payload);
  const std::uint8_t type = read_header(r);
  if ((type & kResponseBit) == 0)
    throw util::IoError("tokend frame: request type " + std::to_string(type) +
                        " where a response was expected");
  const std::uint64_t id = r.u64();
  Response out;
  switch (static_cast<MsgType>(type & ~kResponseBit)) {
    case MsgType::kAcquire: {
      out = AcquireResponse{id, r.i64(), r.i64()};
      break;
    }
    case MsgType::kRefund: {
      out = RefundResponse{id, r.i64(), r.i64()};
      break;
    }
    case MsgType::kQuery: {
      const Tokens balance = r.i64();
      const std::uint8_t exists = r.u8();
      if (exists > 1)
        throw util::IoError("tokend frame: boolean byte out of range");
      out = QueryResponse{id, balance, exists != 0};
      break;
    }
    case MsgType::kBatchAcquire: {
      BatchAcquireResponse m;
      m.id = id;
      const std::uint32_t count = read_batch_count(r);
      m.results.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const Tokens granted = r.i64();
        m.results.push_back(AcquireResult{granted, r.i64()});
      }
      out = std::move(m);
      break;
    }
    default:
      throw util::IoError("tokend frame: unknown response type " +
                          std::to_string(type));
  }
  expect_done(r);
  return out;
}

std::uint64_t request_id(const Request& m) {
  return std::visit([](const auto& msg) { return msg.id; }, m);
}

std::uint64_t request_id(const Response& m) {
  return std::visit([](const auto& msg) { return msg.id; }, m);
}

}  // namespace toka::service::protocol
