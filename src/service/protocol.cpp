#include "service/protocol.hpp"

#include <string>

#include "util/error.hpp"
#include "util/serde.hpp"

namespace toka::service::protocol {

namespace {

/// Is `type` a defined message type under `version`? (Response-ness is
/// checked separately: kError exists only with the response bit.)
bool known_type(std::uint8_t version, MsgType type, bool is_response) {
  switch (type) {
    case MsgType::kAcquire:
    case MsgType::kRefund:
    case MsgType::kQuery:
    case MsgType::kBatchAcquire:
      return true;
    case MsgType::kConfigureNamespace:
    case MsgType::kNamespaceInfo:
    case MsgType::kClusterMap:
    case MsgType::kApplyMap:
    case MsgType::kHandoff:
    case MsgType::kStats:
    case MsgType::kTraces:
    case MsgType::kPromote:
      return version >= kProtocolVersion;
    case MsgType::kReplicate:
    case MsgType::kReplicaAck:
      // One-way stream frames: acked by kReplicaAck requests, so a frame
      // with the response bit set is malformed.
      return version >= kProtocolVersion && !is_response;
    case MsgType::kRedirect:
    case MsgType::kError:
      return version >= kProtocolVersion && is_response;
  }
  return false;
}

util::BinaryWriter header(std::uint8_t version, MsgType type, bool response,
                          std::uint64_t id) {
  util::BinaryWriter w;
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(type) | (response ? kResponseBit : 0));
  w.u64(id);
  return w;
}

void check_version(std::uint8_t version) {
  TOKA_CHECK_MSG(version == kProtocolVersionV1 || version == kProtocolVersion,
                 "cannot encode protocol version "
                     << static_cast<int>(version));
}

void check_v1_encodable(std::uint8_t version, NamespaceId ns,
                        const char* what) {
  TOKA_CHECK_MSG(version >= kProtocolVersion || ns == kDefaultNamespace,
                 "protocol v1 cannot carry " << what << " for namespace "
                                             << ns);
}

Tokens read_tokens(util::BinaryReader& r) {
  const Tokens n = r.i64();
  if (n < 0) throw util::IoError("tokend frame: negative token count");
  return n;
}

std::uint32_t read_batch_count(util::BinaryReader& r) {
  const std::uint32_t count = r.u32();
  if (count > kMaxBatchOps)
    throw util::IoError("tokend frame: batch of " + std::to_string(count) +
                        " ops exceeds the limit");
  return count;
}

bool read_bool(util::BinaryReader& r) {
  const std::uint8_t b = r.u8();
  if (b > 1) throw util::IoError("tokend frame: boolean byte out of range");
  return b != 0;
}

/// Consumes the common header and returns (version, raw type byte).
std::pair<std::uint8_t, std::uint8_t> read_header(util::BinaryReader& r) {
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersionV1 && version != kProtocolVersion)
    throw util::IoError("tokend frame: unsupported protocol version " +
                        std::to_string(version));
  return {version, r.u8()};
}

void expect_done(const util::BinaryReader& r) {
  if (!r.done())
    throw util::IoError("tokend frame: " + std::to_string(r.remaining()) +
                        " trailing bytes");
}

/// Data-op requests carry the namespace only from v2 on; a v1 frame is a
/// v2 frame about the default namespace.
NamespaceId read_ns(util::BinaryReader& r, std::uint8_t version) {
  return version >= kProtocolVersion ? r.u32() : kDefaultNamespace;
}

void write_ns(util::BinaryWriter& w, std::uint8_t version, NamespaceId ns) {
  if (version >= kProtocolVersion) w.u32(ns);
}

void write_namespace_config(util::BinaryWriter& w, const NamespaceConfig& c) {
  w.u8(static_cast<std::uint8_t>(c.strategy.kind));
  w.i64(c.strategy.a_param);
  w.i64(c.strategy.c_param);
  w.i64(c.strategy.reactive_k);
  w.u8(c.strategy.reactive_useful_only ? 1 : 0);
  w.i64(c.delta_us);
  w.i64(c.initial_tokens);
  w.i64(c.idle_ttl_us);
  w.i64(c.max_catchup_ticks);
  w.u8(c.audit ? 1 : 0);
}

void write_cluster_map(util::BinaryWriter& w, const cluster::ClusterMap& m) {
  TOKA_CHECK_MSG(m.nodes.size() <= cluster::kMaxClusterNodes,
                 "cluster map with " << m.nodes.size()
                                     << " nodes exceeds the limit of "
                                     << cluster::kMaxClusterNodes);
  w.u64(m.epoch);
  w.u32(m.vnodes);
  w.u32(static_cast<std::uint32_t>(m.nodes.size()));
  for (const NodeId node : m.nodes) w.u32(node);
  w.u32(m.replicas);
}

cluster::ClusterMap read_cluster_map(util::BinaryReader& r) {
  cluster::ClusterMap m;
  m.epoch = r.u64();
  m.vnodes = r.u32();
  const std::uint32_t count = r.u32();
  if (count > cluster::kMaxClusterNodes)
    throw util::IoError("tokend frame: cluster map of " +
                        std::to_string(count) + " nodes exceeds the limit");
  if (count > 0 && m.vnodes == 0)
    throw util::IoError("tokend frame: cluster map with zero vnodes");
  m.nodes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const NodeId node = r.u32();
    // Canonical form is strictly increasing: a sorted, duplicate-free
    // member list means equal maps are byte-identical on the wire.
    if (!m.nodes.empty() && node <= m.nodes.back())
      throw util::IoError("tokend frame: cluster map nodes out of order");
    m.nodes.push_back(node);
  }
  m.replicas = r.u32();
  if (m.replicas > cluster::kMaxClusterNodes)
    throw util::IoError("tokend frame: replication factor " +
                        std::to_string(m.replicas) + " exceeds the limit");
  return m;
}

NamespaceConfig read_namespace_config(util::BinaryReader& r) {
  NamespaceConfig c;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(core::StrategyKind::kTokenBucket))
    throw util::IoError("tokend frame: unknown strategy kind " +
                        std::to_string(kind));
  c.strategy.kind = static_cast<core::StrategyKind>(kind);
  c.strategy.a_param = r.i64();
  c.strategy.c_param = r.i64();
  c.strategy.reactive_k = r.i64();
  c.strategy.reactive_useful_only = read_bool(r);
  c.delta_us = r.i64();
  c.initial_tokens = r.i64();
  c.idle_ttl_us = r.i64();
  c.max_catchup_ticks = r.i64();
  c.audit = read_bool(r);
  return c;
}

// ------------------------------------------------------- version-aware encode

std::vector<std::byte> encode_at(const AcquireRequest& m,
                                 std::uint8_t version) {
  check_v1_encodable(version, m.ns, "an acquire");
  util::BinaryWriter w = header(version, MsgType::kAcquire, false, m.id);
  write_ns(w, version, m.ns);
  w.u64(m.key);
  w.i64(m.tokens);
  return w.take();
}

std::vector<std::byte> encode_at(const AcquireResponse& m,
                                 std::uint8_t version) {
  util::BinaryWriter w = header(version, MsgType::kAcquire, true, m.id);
  w.i64(m.granted);
  w.i64(m.balance);
  return w.take();
}

std::vector<std::byte> encode_at(const RefundRequest& m,
                                 std::uint8_t version) {
  check_v1_encodable(version, m.ns, "a refund");
  util::BinaryWriter w = header(version, MsgType::kRefund, false, m.id);
  write_ns(w, version, m.ns);
  w.u64(m.key);
  w.i64(m.tokens);
  return w.take();
}

std::vector<std::byte> encode_at(const RefundResponse& m,
                                 std::uint8_t version) {
  util::BinaryWriter w = header(version, MsgType::kRefund, true, m.id);
  w.i64(m.accepted);
  w.i64(m.balance);
  return w.take();
}

std::vector<std::byte> encode_at(const QueryRequest& m, std::uint8_t version) {
  check_v1_encodable(version, m.ns, "a query");
  util::BinaryWriter w = header(version, MsgType::kQuery, false, m.id);
  write_ns(w, version, m.ns);
  w.u64(m.key);
  return w.take();
}

std::vector<std::byte> encode_at(const QueryResponse& m,
                                 std::uint8_t version) {
  util::BinaryWriter w = header(version, MsgType::kQuery, true, m.id);
  w.i64(m.balance);
  w.u8(m.exists ? 1 : 0);
  return w.take();
}

std::vector<std::byte> encode_at(const BatchAcquireRequest& m,
                                 std::uint8_t version) {
  check_v1_encodable(version, m.ns, "a batch acquire");
  // Fail fast on the sender: a frame above the batch limit would only be
  // dropped as malformed by the receiver, surfacing as a timeout.
  TOKA_CHECK_MSG(m.ops.size() <= kMaxBatchOps,
                 "batch of " << m.ops.size() << " ops exceeds the limit of "
                             << kMaxBatchOps);
  util::BinaryWriter w = header(version, MsgType::kBatchAcquire, false, m.id);
  write_ns(w, version, m.ns);
  w.u32(static_cast<std::uint32_t>(m.ops.size()));
  for (const AcquireOp& op : m.ops) {
    w.u64(op.key);
    w.i64(op.tokens);
  }
  return w.take();
}

std::vector<std::byte> encode_at(const BatchAcquireResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(m.results.size() <= kMaxBatchOps,
                 "batch of " << m.results.size()
                             << " results exceeds the limit of "
                             << kMaxBatchOps);
  util::BinaryWriter w = header(version, MsgType::kBatchAcquire, true, m.id);
  w.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const AcquireResult& res : m.results) {
    w.i64(res.granted);
    w.i64(res.balance);
  }
  return w.take();
}

std::vector<std::byte> encode_at(const ConfigureNamespaceRequest& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry admin messages");
  util::BinaryWriter w =
      header(version, MsgType::kConfigureNamespace, false, m.id);
  w.u32(m.ns);
  write_namespace_config(w, m.config);
  return w.take();
}

std::vector<std::byte> encode_at(const ConfigureNamespaceResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry admin messages");
  util::BinaryWriter w =
      header(version, MsgType::kConfigureNamespace, true, m.id);
  w.u8(m.created ? 1 : 0);
  w.i64(m.capacity);
  return w.take();
}

std::vector<std::byte> encode_at(const NamespaceInfoRequest& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry admin messages");
  util::BinaryWriter w = header(version, MsgType::kNamespaceInfo, false, m.id);
  w.u32(m.ns);
  return w.take();
}

std::vector<std::byte> encode_at(const NamespaceInfoResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry admin messages");
  util::BinaryWriter w = header(version, MsgType::kNamespaceInfo, true, m.id);
  w.u8(m.exists ? 1 : 0);
  if (m.exists) {
    write_namespace_config(w, m.config);
    w.i64(m.capacity);
    w.u64(m.accounts);
  }
  return w.take();
}

std::vector<std::byte> encode_at(const ErrorResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry error responses");
  util::BinaryWriter w = header(version, MsgType::kError, true, m.id);
  w.u8(static_cast<std::uint8_t>(m.code));
  // Only overload errors carry the retry hint; the other codes keep their
  // pre-existing byte-identical layout.
  if (m.code == ErrorCode::kOverloaded) w.i64(m.retry_after_us);
  return w.take();
}

void check_v2_cluster(std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry cluster messages");
}

std::vector<std::byte> encode_at(const ClusterMapRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  return header(version, MsgType::kClusterMap, false, m.id).take();
}

std::vector<std::byte> encode_at(const ClusterMapResponse& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kClusterMap, true, m.id);
  write_cluster_map(w, m.map);
  return w.take();
}

std::vector<std::byte> encode_at(const ApplyMapRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kApplyMap, false, m.id);
  write_cluster_map(w, m.map);
  return w.take();
}

std::vector<std::byte> encode_at(const ApplyMapResponse& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kApplyMap, true, m.id);
  w.u8(m.accepted ? 1 : 0);
  w.u64(m.epoch);
  w.u64(m.handoffs);
  return w.take();
}

std::vector<std::byte> encode_at(const HandoffRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kHandoff, false, m.id);
  w.u64(m.epoch);
  w.u32(m.ns);
  w.u64(m.key);
  w.i64(m.balance);
  return w.take();
}

std::vector<std::byte> encode_at(const HandoffResponse& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kHandoff, true, m.id);
  w.u8(m.accepted ? 1 : 0);
  return w.take();
}

std::vector<std::byte> encode_at(const StatsRequest& m, std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry stats messages");
  return header(version, MsgType::kStats, false, m.id).take();
}

std::vector<std::byte> encode_at(const StatsResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry stats messages");
  TOKA_CHECK_MSG(m.entries.size() <= kMaxStatsEntries,
                 "stats snapshot of " << m.entries.size()
                                      << " entries exceeds the limit of "
                                      << kMaxStatsEntries);
  util::BinaryWriter w = header(version, MsgType::kStats, true, m.id);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const StatsEntry& e : m.entries) {
    TOKA_CHECK_MSG(e.name.size() <= kMaxStatsNameLen,
                   "stats entry name of " << e.name.size()
                                          << " bytes exceeds the limit");
    w.str(e.name);
    w.u8(e.kind);
    w.f64(e.value);
    if (e.kind == 2) {
      w.f64(e.p50);
      w.f64(e.p90);
      w.f64(e.p99);
      w.f64(e.max);
      w.f64(e.sum);
      TOKA_CHECK_MSG(e.buckets.size() <= kMaxStatsBuckets,
                     "stats entry with " << e.buckets.size()
                                         << " buckets exceeds the limit");
      w.u32(static_cast<std::uint32_t>(e.buckets.size()));
      for (const StatsBucket& b : e.buckets) {
        w.u32(b.index);
        w.u64(b.count);
      }
    }
  }
  return w.take();
}

std::vector<std::byte> encode_at(const TracesRequest& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry trace messages");
  util::BinaryWriter w = header(version, MsgType::kTraces, false, m.id);
  w.u32(m.max_spans);
  return w.take();
}

std::vector<std::byte> encode_at(const TracesResponse& m,
                                 std::uint8_t version) {
  TOKA_CHECK_MSG(version >= kProtocolVersion,
                 "protocol v1 cannot carry trace messages");
  TOKA_CHECK_MSG(m.spans.size() <= kMaxTraceSpans,
                 "trace snapshot of " << m.spans.size()
                                      << " spans exceeds the limit of "
                                      << kMaxTraceSpans);
  util::BinaryWriter w = header(version, MsgType::kTraces, true, m.id);
  w.u32(static_cast<std::uint32_t>(m.spans.size()));
  for (const TraceSpan& s : m.spans) {
    w.u64(s.trace_id);
    w.u64(s.key);
    w.i64(s.start_us);
    w.i64(s.dur_us);
    w.u32(s.ns);
    w.u32(s.node);
    w.u8(s.stage);
    w.u8(s.decision);
    w.u8(s.flags);
  }
  return w.take();
}

std::vector<std::byte> encode_at(const ReplicateRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  TOKA_CHECK_MSG(m.deltas.size() <= kMaxReplicaDeltas,
                 "replica frame of " << m.deltas.size()
                                     << " deltas exceeds the limit of "
                                     << kMaxReplicaDeltas);
  util::BinaryWriter w = header(version, MsgType::kReplicate, false, m.id);
  w.u64(m.epoch);
  w.u64(m.seq);
  w.u32(static_cast<std::uint32_t>(m.deltas.size()));
  for (const ReplicaDelta& d : m.deltas) {
    w.u32(d.ns);
    w.u64(d.key);
    w.i64(d.balance);
    w.i64(d.floor);
  }
  return w.take();
}

std::vector<std::byte> encode_at(const ReplicaAckRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kReplicaAck, false, m.id);
  w.u64(m.seq);
  return w.take();
}

std::vector<std::byte> encode_at(const PromoteRequest& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kPromote, false, m.id);
  w.u32(m.failed);
  w.u64(m.epoch);
  return w.take();
}

std::vector<std::byte> encode_at(const PromoteResponse& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kPromote, true, m.id);
  w.u8(m.accepted ? 1 : 0);
  w.u64(m.epoch);
  w.u64(m.installed);
  w.i64(m.forfeited);
  return w.take();
}

std::vector<std::byte> encode_at(const RedirectResponse& m,
                                 std::uint8_t version) {
  check_v2_cluster(version);
  util::BinaryWriter w = header(version, MsgType::kRedirect, true, m.id);
  w.u64(m.epoch);
  w.u32(m.owner);
  return w.take();
}

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedBody: return "malformed-body";
    case ErrorCode::kUnknownNamespace: return "unknown-namespace";
    case ErrorCode::kInvalidConfig: return "invalid-config";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kOverloaded: return "overloaded";
  }
  return "unknown-error";
}

std::vector<std::byte> encode(const AcquireRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const AcquireResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const RefundRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const RefundResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const QueryRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const QueryResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const BatchAcquireRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const BatchAcquireResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ConfigureNamespaceRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ConfigureNamespaceResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const NamespaceInfoRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const NamespaceInfoResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ClusterMapRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ClusterMapResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ApplyMapRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ApplyMapResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const HandoffRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const HandoffResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const StatsRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const StatsResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const TracesRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const TracesResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ReplicateRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ReplicaAckRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const PromoteRequest& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const PromoteResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const RedirectResponse& m) {
  return encode_at(m, kProtocolVersion);
}
std::vector<std::byte> encode(const ErrorResponse& m) {
  return encode_at(m, kProtocolVersion);
}

std::vector<std::byte> encode(const Request& m, std::uint8_t version) {
  check_version(version);
  return std::visit(
      [version](const auto& msg) { return encode_at(msg, version); }, m);
}

std::vector<std::byte> encode(const Response& m, std::uint8_t version) {
  check_version(version);
  return std::visit(
      [version](const auto& msg) { return encode_at(msg, version); }, m);
}

Request decode_request(std::span<const std::byte> payload) {
  std::uint8_t version;
  return decode_request(payload, version);
}

Request decode_request(std::span<const std::byte> payload,
                       std::uint8_t& version_out) {
  std::optional<TraceContext> trace;
  return decode_request(payload, version_out, trace);
}

Request decode_request(std::span<const std::byte> payload,
                       std::uint8_t& version_out,
                       std::optional<TraceContext>& trace_out) {
  trace_out.reset();
  util::BinaryReader r(payload);
  const auto [version, type] = read_header(r);
  version_out = version;
  const std::uint64_t id = r.u64();
  // Only a v2 request can carry a trace context; a v1 type byte with the
  // bit set stays an unknown type (v1 has no trace vocabulary).
  const bool traced = (type & kTraceBit) != 0 && (type & kResponseBit) == 0 &&
                      version >= kProtocolVersion;
  const MsgType msg_type =
      static_cast<MsgType>(traced ? (type & ~kTraceBit) : type);
  if (!known_type(version, msg_type, /*is_response=*/false) ||
      (type & kResponseBit) != 0)
    throw util::IoError("tokend frame: unknown request type " +
                        std::to_string(type) + " for version " +
                        std::to_string(version));
  if (traced) {
    TraceContext ctx;
    ctx.trace_id = r.u64();
    const std::uint8_t flags = r.u8();
    if ((flags & ~kTraceFlagSampled) != 0)
      throw util::IoError("tokend frame: unknown trace flags " +
                          std::to_string(flags));
    ctx.sampled = (flags & kTraceFlagSampled) != 0;
    trace_out = ctx;
  }
  Request out;
  switch (msg_type) {
    case MsgType::kAcquire: {
      const NamespaceId ns = read_ns(r, version);
      out = AcquireRequest{id, r.u64(), read_tokens(r), ns};
      break;
    }
    case MsgType::kRefund: {
      const NamespaceId ns = read_ns(r, version);
      out = RefundRequest{id, r.u64(), read_tokens(r), ns};
      break;
    }
    case MsgType::kQuery: {
      const NamespaceId ns = read_ns(r, version);
      out = QueryRequest{id, r.u64(), ns};
      break;
    }
    case MsgType::kBatchAcquire: {
      BatchAcquireRequest m;
      m.id = id;
      m.ns = read_ns(r, version);
      const std::uint32_t count = read_batch_count(r);
      m.ops.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint64_t key = r.u64();
        m.ops.push_back(AcquireOp{key, read_tokens(r)});
      }
      out = std::move(m);
      break;
    }
    case MsgType::kConfigureNamespace: {
      ConfigureNamespaceRequest m;
      m.id = id;
      m.ns = r.u32();
      m.config = read_namespace_config(r);
      out = std::move(m);
      break;
    }
    case MsgType::kNamespaceInfo: {
      out = NamespaceInfoRequest{id, r.u32()};
      break;
    }
    case MsgType::kClusterMap: {
      out = ClusterMapRequest{id};
      break;
    }
    case MsgType::kApplyMap: {
      ApplyMapRequest m;
      m.id = id;
      m.map = read_cluster_map(r);
      out = std::move(m);
      break;
    }
    case MsgType::kHandoff: {
      HandoffRequest m;
      m.id = id;
      m.epoch = r.u64();
      m.ns = r.u32();
      m.key = r.u64();
      m.balance = read_tokens(r);
      out = std::move(m);
      break;
    }
    case MsgType::kStats: {
      out = StatsRequest{id};
      break;
    }
    case MsgType::kTraces: {
      out = TracesRequest{id, r.u32()};
      break;
    }
    case MsgType::kReplicate: {
      ReplicateRequest m;
      m.id = id;
      m.epoch = r.u64();
      m.seq = r.u64();
      const std::uint32_t count = r.u32();
      if (count > kMaxReplicaDeltas)
        throw util::IoError("tokend frame: replica frame of " +
                            std::to_string(count) +
                            " deltas exceeds the limit");
      m.deltas.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ReplicaDelta d;
        d.ns = r.u32();
        d.key = r.u64();
        d.balance = read_tokens(r);
        d.floor = read_tokens(r);
        if (d.floor > d.balance)
          throw util::IoError("tokend frame: replica floor above balance");
        m.deltas.push_back(d);
      }
      out = std::move(m);
      break;
    }
    case MsgType::kReplicaAck: {
      out = ReplicaAckRequest{id, r.u64()};
      break;
    }
    case MsgType::kPromote: {
      PromoteRequest m;
      m.id = id;
      m.failed = r.u32();
      m.epoch = r.u64();
      if (m.failed == kNoNode)
        throw util::IoError("tokend frame: promote names no failed node");
      out = std::move(m);
      break;
    }
    default:
      throw util::IoError("tokend frame: unknown request type " +
                          std::to_string(type));
  }
  expect_done(r);
  return out;
}

Response decode_response(std::span<const std::byte> payload) {
  util::BinaryReader r(payload);
  const auto [version, type] = read_header(r);
  if ((type & kResponseBit) == 0)
    throw util::IoError("tokend frame: request type " + std::to_string(type) +
                        " where a response was expected");
  const MsgType msg_type = static_cast<MsgType>(type & ~kResponseBit);
  if (!known_type(version, msg_type, /*is_response=*/true))
    throw util::IoError("tokend frame: unknown response type " +
                        std::to_string(type) + " for version " +
                        std::to_string(version));
  const std::uint64_t id = r.u64();
  Response out;
  switch (msg_type) {
    case MsgType::kAcquire: {
      out = AcquireResponse{id, r.i64(), r.i64()};
      break;
    }
    case MsgType::kRefund: {
      out = RefundResponse{id, r.i64(), r.i64()};
      break;
    }
    case MsgType::kQuery: {
      const Tokens balance = r.i64();
      out = QueryResponse{id, balance, read_bool(r)};
      break;
    }
    case MsgType::kBatchAcquire: {
      BatchAcquireResponse m;
      m.id = id;
      const std::uint32_t count = read_batch_count(r);
      m.results.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const Tokens granted = r.i64();
        m.results.push_back(AcquireResult{granted, r.i64()});
      }
      out = std::move(m);
      break;
    }
    case MsgType::kConfigureNamespace: {
      const bool created = read_bool(r);
      out = ConfigureNamespaceResponse{id, created, r.i64()};
      break;
    }
    case MsgType::kNamespaceInfo: {
      NamespaceInfoResponse m;
      m.id = id;
      m.exists = read_bool(r);
      if (m.exists) {
        m.config = read_namespace_config(r);
        m.capacity = r.i64();
        m.accounts = r.u64();
      }
      out = std::move(m);
      break;
    }
    case MsgType::kClusterMap: {
      ClusterMapResponse m;
      m.id = id;
      m.map = read_cluster_map(r);
      out = std::move(m);
      break;
    }
    case MsgType::kApplyMap: {
      ApplyMapResponse m;
      m.id = id;
      m.accepted = read_bool(r);
      m.epoch = r.u64();
      m.handoffs = r.u64();
      out = std::move(m);
      break;
    }
    case MsgType::kHandoff: {
      const bool accepted = read_bool(r);
      out = HandoffResponse{id, accepted};
      break;
    }
    case MsgType::kStats: {
      StatsResponse m;
      m.id = id;
      const std::uint32_t count = r.u32();
      if (count > kMaxStatsEntries)
        throw util::IoError("tokend frame: stats snapshot of " +
                            std::to_string(count) +
                            " entries exceeds the limit");
      m.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        StatsEntry e;
        e.name = r.str();
        if (e.name.size() > kMaxStatsNameLen)
          throw util::IoError("tokend frame: stats entry name of " +
                              std::to_string(e.name.size()) +
                              " bytes exceeds the limit");
        e.kind = r.u8();
        if (e.kind > 2)
          throw util::IoError("tokend frame: unknown stats entry kind " +
                              std::to_string(e.kind));
        e.value = r.f64();
        if (e.kind == 2) {
          e.p50 = r.f64();
          e.p90 = r.f64();
          e.p99 = r.f64();
          e.max = r.f64();
          e.sum = r.f64();
          const std::uint32_t nbuckets = r.u32();
          if (nbuckets > kMaxStatsBuckets)
            throw util::IoError("tokend frame: stats entry with " +
                                std::to_string(nbuckets) +
                                " buckets exceeds the limit");
          e.buckets.reserve(nbuckets);
          for (std::uint32_t b = 0; b < nbuckets; ++b) {
            StatsBucket bucket;
            bucket.index = r.u32();
            bucket.count = r.u64();
            if (bucket.index >= kMaxStatsBuckets)
              throw util::IoError(
                  "tokend frame: stats bucket index out of range");
            if (!e.buckets.empty() && bucket.index <= e.buckets.back().index)
              throw util::IoError(
                  "tokend frame: stats buckets out of order");
            e.buckets.push_back(bucket);
          }
        }
        m.entries.push_back(std::move(e));
      }
      out = std::move(m);
      break;
    }
    case MsgType::kTraces: {
      TracesResponse m;
      m.id = id;
      const std::uint32_t count = r.u32();
      if (count > kMaxTraceSpans)
        throw util::IoError("tokend frame: trace snapshot of " +
                            std::to_string(count) +
                            " spans exceeds the limit");
      m.spans.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        TraceSpan s;
        s.trace_id = r.u64();
        s.key = r.u64();
        s.start_us = r.i64();
        s.dur_us = r.i64();
        s.ns = r.u32();
        s.node = r.u32();
        s.stage = r.u8();
        s.decision = r.u8();
        s.flags = r.u8();
        m.spans.push_back(s);
      }
      out = std::move(m);
      break;
    }
    case MsgType::kPromote: {
      PromoteResponse m;
      m.id = id;
      m.accepted = read_bool(r);
      m.epoch = r.u64();
      m.installed = r.u64();
      m.forfeited = read_tokens(r);
      out = std::move(m);
      break;
    }
    case MsgType::kRedirect: {
      RedirectResponse m;
      m.id = id;
      m.epoch = r.u64();
      m.owner = r.u32();
      out = std::move(m);
      break;
    }
    case MsgType::kError: {
      const std::uint8_t code = r.u8();
      if (code < static_cast<std::uint8_t>(ErrorCode::kMalformedBody) ||
          code > static_cast<std::uint8_t>(ErrorCode::kOverloaded))
        throw util::IoError("tokend frame: unknown error code " +
                            std::to_string(code));
      ErrorResponse m{id, static_cast<ErrorCode>(code)};
      if (m.code == ErrorCode::kOverloaded) {
        m.retry_after_us = r.i64();
        if (m.retry_after_us < 0)
          throw util::IoError("tokend frame: negative retry-after hint");
      }
      out = m;
      break;
    }
    default:
      throw util::IoError("tokend frame: unknown response type " +
                          std::to_string(type));
  }
  expect_done(r);
  return out;
}

std::optional<FrameHeader> try_parse_header(
    std::span<const std::byte> payload) {
  constexpr std::size_t kHeaderBytes = 1 + 1 + 8;
  constexpr std::size_t kTraceContextBytes = 8 + 1;
  if (payload.size() < kHeaderBytes) return std::nullopt;
  util::BinaryReader r(payload);
  const std::uint8_t version = r.u8();
  if (version != kProtocolVersionV1 && version != kProtocolVersion)
    return std::nullopt;
  const std::uint8_t type_byte = r.u8();
  const bool is_response = (type_byte & kResponseBit) != 0;
  // Responses keep kTraceBit as part of their type value (kRedirect and
  // kError live above 0x40); only a v2 request's bit announces context.
  const bool traced = !is_response && (type_byte & kTraceBit) != 0 &&
                      version >= kProtocolVersion;
  std::uint8_t masked = type_byte & ~kResponseBit;
  if (traced) masked &= ~kTraceBit;
  const MsgType type = static_cast<MsgType>(masked);
  if (!known_type(version, type, is_response)) return std::nullopt;
  FrameHeader out;
  out.version = version;
  out.type = type;
  out.is_response = is_response;
  out.id = r.u64();
  if (traced) {
    if (payload.size() < kHeaderBytes + kTraceContextBytes)
      return std::nullopt;
    const std::uint64_t trace_id = r.u64();
    const std::uint8_t flags = r.u8();
    if ((flags & ~kTraceFlagSampled) != 0) return std::nullopt;
    out.traced = true;
    out.trace_id = trace_id;
    out.sampled = (flags & kTraceFlagSampled) != 0;
  }
  return out;
}

void attach_trace_context(std::vector<std::byte>& frame,
                          const TraceContext& ctx) {
  constexpr std::size_t kHeaderBytes = 1 + 1 + 8;
  TOKA_CHECK_MSG(frame.size() >= kHeaderBytes,
                 "cannot attach a trace context to a " << frame.size()
                                                       << "-byte frame");
  TOKA_CHECK_MSG(std::to_integer<std::uint8_t>(frame[0]) == kProtocolVersion,
                 "trace contexts require protocol v2");
  const std::uint8_t type_byte = std::to_integer<std::uint8_t>(frame[1]);
  TOKA_CHECK_MSG((type_byte & (kResponseBit | kTraceBit)) == 0,
                 "trace contexts attach to untraced request frames only");
  frame[1] = static_cast<std::byte>(type_byte | kTraceBit);
  std::byte ctx_bytes[9];
  for (int i = 0; i < 8; ++i)
    ctx_bytes[i] = static_cast<std::byte>((ctx.trace_id >> (8 * i)) & 0xFF);
  ctx_bytes[8] =
      static_cast<std::byte>(ctx.sampled ? kTraceFlagSampled : 0);
  frame.insert(frame.begin() + kHeaderBytes, std::begin(ctx_bytes),
               std::end(ctx_bytes));
}

std::uint64_t request_id(const Request& m) {
  return std::visit([](const auto& msg) { return msg.id; }, m);
}

std::uint64_t request_id(const Response& m) {
  return std::visit([](const auto& msg) { return msg.id; }, m);
}

NamespaceId namespace_of(const Request& m) {
  return std::visit(
      [](const auto& msg) -> NamespaceId {
        if constexpr (requires { msg.ns; }) {
          return msg.ns;
        } else {
          return kDefaultNamespace;  // the map messages carry no namespace
        }
      },
      m);
}

}  // namespace toka::service::protocol
