// tokend's request loop: an AccountTable exposed over a runtime::Transport.
//
// The server installs itself as the transport's receive handler; each
// incoming frame is decoded, executed against the table and answered to
// the sender. Handlers run on transport-owned threads (one per TCP
// connection, the dispatcher for the in-process fabric) — the table's
// shard locks make concurrent execution safe, so the same server runs
// in-process for tests and as the real tokend daemon over runtime::Tcp.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "util/types.hpp"

namespace toka::service {

class Server {
 public:
  /// Installs the request handler on `transport`. The table and the
  /// transport must outlive the server.
  Server(AccountTable& table, runtime::Transport& transport);

  /// Detaches the handler and waits out any in-flight request, so frames
  /// still arriving afterwards are dropped by the transport instead of
  /// reaching a dead server.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Frames executed and answered.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Frames dropped because they failed to decode. A malformed frame is
  /// never partially applied and never answered (the fabric is best-effort
  /// at-most-once; the client's timeout covers this case).
  std::uint64_t requests_malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }

 private:
  void on_frame(NodeId from, std::vector<std::byte> payload);

  AccountTable* table_;
  runtime::Transport* transport_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> malformed_{0};
};

}  // namespace toka::service
