// tokend's request loop: an AccountTable exposed over a runtime::Transport.
//
// The server installs itself as the transport's receive handler; each
// incoming frame is decoded, executed against the table and answered to
// the sender — in the protocol version the request used, so v1 clients
// interoperate with the v2 server unchanged. Handlers run on transport-
// owned threads (one per TCP connection, the dispatcher for the in-process
// fabric) — the table's shard locks make concurrent execution safe, so the
// same server runs in-process for tests and as the real tokend daemon over
// runtime::Tcp.
//
// Failure taxonomy (protocol v2):
//   - requests_served: executed and answered with a success response;
//   - requests_errored: answered with a typed ErrorResponse — the header
//     decoded but the body did not (kMalformedBody), the namespace does
//     not exist (kUnknownNamespace), or a ConfigureNamespace carried a
//     rejected policy (kInvalidConfig);
//   - requests_malformed: not even the header decoded; the frame is
//     dropped unanswered (the fabric is best-effort at-most-once; the
//     client's timeout covers this case).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "util/types.hpp"

namespace toka::service {

class Server {
 public:
  /// Installs the request handler on `transport`. The table and the
  /// transport must outlive the server.
  Server(AccountTable& table, runtime::Transport& transport);

  /// Detaches the handler and waits out any in-flight request, so frames
  /// still arriving afterwards are dropped by the transport instead of
  /// reaching a dead server.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Frames executed and answered with a success response.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Frames answered with a typed ErrorResponse (valid header, but a
  /// malformed body, unknown namespace or invalid config). Nothing is ever
  /// partially applied.
  std::uint64_t requests_errored() const {
    return errored_.load(std::memory_order_relaxed);
  }

  /// Frames dropped because not even the header decoded. A malformed frame
  /// is never partially applied and never answered.
  std::uint64_t requests_malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }

 private:
  void on_frame(NodeId from, std::vector<std::byte> payload);

  AccountTable* table_;
  runtime::Transport* transport_;
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> errored_{0};
  std::atomic<std::uint64_t> malformed_{0};
};

}  // namespace toka::service
