// tokend's request loop: an AccountTable exposed over a runtime::Transport.
//
// The server installs itself as the transport's receive handler; each
// incoming frame is decoded, executed against the table and answered to
// the sender — in the protocol version the request used, so v1 clients
// interoperate with the v2 server unchanged. Handlers run on transport-
// owned threads (one per TCP connection, the dispatcher for the in-process
// fabric) — the table's shard locks make concurrent execution safe, so the
// same server runs in-process for tests and as the real tokend daemon over
// runtime::Tcp.
//
// Failure taxonomy (protocol v2):
//   - requests_served: executed and answered with a success response;
//   - requests_errored: answered with a typed ErrorResponse — the header
//     decoded but the body did not (kMalformedBody), the namespace does
//     not exist (kUnknownNamespace), or a ConfigureNamespace carried a
//     rejected policy (kInvalidConfig);
//   - requests_malformed: not even the header decoded; the frame is
//     dropped unanswered (the fabric is best-effort at-most-once; the
//     client's timeout covers this case);
//   - requests_shed: a data op rejected by the admission bucket with
//     ErrorCode::kOverloaded (carrying a retry-after hint) *before* being
//     decoded or touching the table — the overload valve's whole point is
//     that a shed request costs almost nothing.
//
// With ServerOptions::registry set, the server exports its counters, a
// request-latency histogram, the admission bucket's state, the table's
// stats (including refunds_dropped) and the hot-key sketch into that
// obs::Registry, and answers protocol kStats requests with a snapshot of
// it. With ServerOptions::admission.enabled, data ops beyond the
// per-interval budget are shed (admin, cluster and stats requests are
// always admitted — an operator must be able to reconfigure and observe an
// overloaded server).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/admission.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/protocol.hpp"
#include "service/shard_engine.hpp"
#include "util/types.hpp"

namespace toka::service {

struct ServerOptions {
  /// Telemetry export target; nullptr disables export (and kStats answers
  /// with an empty snapshot). Must outlive the server.
  obs::Registry* registry = nullptr;
  /// Overload valve; disabled by default (never sheds).
  obs::AdmissionConfig admission{};
  /// Shard-per-thread dispatch: when set (the engine must run on the same
  /// table, built with exclusive_shards), data ops are posted to the
  /// owning shard worker instead of executed under the striped lock; the
  /// reply is encoded and sent from the worker's completion, where the
  /// event loop's cork batches it. A full owner queue sheds the op with a
  /// typed kOverloaded. Admin requests and table-sweeping gauges run under
  /// the engine's quiesce. Must outlive the server.
  ShardEngine* engine = nullptr;
  /// Flight recorder: requests carrying a trace context get decode, shed
  /// and reply-cork spans recorded here (and, with `engine` also set, the
  /// engine's queue-wait/execute spans — give both the same tracer). The
  /// server answers protocol kTraces requests from it. Must outlive the
  /// server.
  obs::Tracer* tracer = nullptr;
  /// Stamped into exported trace spans so a cluster-wide trace shows which
  /// node recorded each one (kNoNode = standalone).
  NodeId node = kNoNode;
  /// Cluster replication only (ignored by a standalone Server): how far
  /// above its advertised replica floor an account may spend before grants
  /// wait for follower acks. 0 = auto, half the namespace capacity. Smaller
  /// = tighter crash-forfeit bound, earlier burst throttling.
  Tokens replication_headroom = 0;
  /// Cluster replication only, locked plane only: flush replica deltas to
  /// followers every N owned data ops instead of after every request (the
  /// engine plane always flushes at worker drain boundaries). Coalescing
  /// keeps the delta stream off the per-request frame path; everything
  /// deferred is replication lag a failover may forfeit. 1 = flush per
  /// request (the tight-bound setting the churn tests pin).
  std::uint32_t replication_flush_ops = 32;
};

class Server {
 public:
  /// Installs the request handler on `transport`. The table and the
  /// transport (and options.registry, if set) must outlive the server.
  explicit Server(AccountTable& table, runtime::Transport& transport,
                  ServerOptions options = {});

  /// Detaches the handler and waits out any in-flight request, so frames
  /// still arriving afterwards are dropped by the transport instead of
  /// reaching a dead server; then unregisters its metrics.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Frames executed and answered with a success response.
  std::uint64_t requests_served() const {
    return served_.load(std::memory_order_relaxed);
  }

  /// Frames answered with a typed ErrorResponse (valid header, but a
  /// malformed body, unknown namespace or invalid config). Nothing is ever
  /// partially applied.
  std::uint64_t requests_errored() const {
    return errored_.load(std::memory_order_relaxed);
  }

  /// Frames dropped because not even the header decoded. A malformed frame
  /// is never partially applied and never answered.
  std::uint64_t requests_malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }

  /// Data ops answered kOverloaded: shed by the admission bucket, or (in
  /// engine mode) bounced off a full shard-owner queue.
  std::uint64_t requests_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }

  const obs::AdmissionBucket& admission() const { return admission_; }

  /// Server-side batching hint derived from the hot-key sketch: when one
  /// account dominates the acquire traffic, clients gain by batching ops
  /// per frame (one decode + one shard lock amortized over the batch).
  /// 1 = no skew worth batching for; grows toward 64 with the top
  /// account's traffic share. Exported as the tokend_batch_hint gauge.
  std::int64_t batch_hint() const;

 private:
  struct Pending;  ///< engine completion context (defined in server.cpp)

  /// Trace identity of one in-flight request (zero-initialized when the
  /// frame carried no context).
  struct TraceInfo {
    bool traced = false;
    bool sampled = false;
    std::uint64_t trace_id = 0;
  };

  void on_frame(NodeId from, std::vector<std::byte> payload);
  void dispatch_engine(NodeId from, protocol::Request&& request,
                       std::uint8_t version,
                       std::chrono::steady_clock::time_point t0,
                       const TraceInfo& trace);
  void finish_engine_reply(NodeId from, const protocol::Response& response,
                           const Pending& p);
  void shed_queue_full(NodeId from, std::uint64_t id, const TraceInfo& trace,
                       NamespaceId ns, std::uint64_t key);
  static void complete_engine_op(ShardOp& op, void* ctx);
  static void complete_engine_batch(EngineBatch& batch, void* ctx);
  void register_metrics();

  // Table sweeps (stats, account counts, the hot-key sketch) iterate every
  // shard; with an engine attached they run under its quiesce so the sweep
  // never races a shard owner.
  TableStats swept_stats() const;
  std::size_t swept_account_count() const;
  std::vector<AccountTable::HotKey> swept_hot_keys(std::size_t n) const;

  AccountTable* table_;
  runtime::Transport* transport_;
  ShardEngine* engine_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  NodeId node_ = kNoNode;
  obs::Registry* registry_;
  obs::AdmissionBucket admission_;
  obs::Histogram* latency_ = nullptr;  ///< owned by the registry
  bool timed_ = false;                 ///< measure per-request service time
  std::vector<std::string> metric_names_;  ///< what to unregister on exit
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> errored_{0};
  std::atomic<std::uint64_t> malformed_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace toka::service
