#include "service/server.hpp"

#include <optional>
#include <utility>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace toka::service {

namespace {
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;
}  // namespace

Server::Server(AccountTable& table, runtime::Transport& transport)
    : table_(&table), transport_(&transport) {
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

Server::~Server() { transport_->set_handler({}); }

void Server::on_frame(NodeId from, std::vector<std::byte> payload) {
  namespace proto = protocol;
  std::uint8_t version = proto::kProtocolVersion;
  proto::Request request;
  try {
    request = proto::decode_request(payload, version);
  } catch (const util::IoError&) {
    // The body did not decode. If the header did, the sender gets a typed
    // error it can correlate; pure garbage is dropped unanswered.
    const std::optional<proto::FrameHeader> head =
        proto::try_parse_header(payload);
    if (head.has_value() && !head->is_response) {
      errored_.fetch_add(1, std::memory_order_relaxed);
      transport_->send(from,
                       proto::encode(proto::ErrorResponse{
                           head->id, proto::ErrorCode::kMalformedBody}));
    } else {
      malformed_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Data ops on a namespace that does not exist get a typed error before
  // touching the table (namespaces are never deleted, so the check cannot
  // race a removal). Admin and cluster requests skip the precheck — they
  // either create the namespace or don't address one.
  const std::uint64_t id = proto::request_id(request);
  const bool is_data_op = std::holds_alternative<proto::AcquireRequest>(request) ||
                          std::holds_alternative<proto::RefundRequest>(request) ||
                          std::holds_alternative<proto::QueryRequest>(request) ||
                          std::holds_alternative<proto::BatchAcquireRequest>(request);
  if (is_data_op && !table_->has_namespace(proto::namespace_of(request))) {
    errored_.fetch_add(1, std::memory_order_relaxed);
    transport_->send(from, proto::encode(proto::ErrorResponse{
                               id, proto::ErrorCode::kUnknownNamespace}));
    return;
  }

  proto::Response response = std::visit(
      Overloaded{
          [&](const proto::AcquireRequest& r) -> proto::Response {
            const AcquireResult res = table_->acquire(r.ns, r.key, r.tokens);
            return proto::AcquireResponse{r.id, res.granted, res.balance};
          },
          [&](const proto::RefundRequest& r) -> proto::Response {
            const RefundResult res = table_->refund(r.ns, r.key, r.tokens);
            return proto::RefundResponse{r.id, res.accepted, res.balance};
          },
          [&](const proto::QueryRequest& r) -> proto::Response {
            const QueryResult res = table_->query(r.ns, r.key);
            return proto::QueryResponse{r.id, res.balance, res.exists};
          },
          [&](const proto::BatchAcquireRequest& r) -> proto::Response {
            proto::BatchAcquireResponse resp;
            resp.id = r.id;
            resp.results = table_->acquire_batch(r.ns, r.ops);
            return resp;
          },
          [&](const proto::ConfigureNamespaceRequest& r) -> proto::Response {
            try {
              const bool created =
                  table_->configure_namespace(r.ns, r.config);
              return proto::ConfigureNamespaceResponse{
                  r.id, created, table_->capacity_bound(r.ns)};
            } catch (const util::InvariantError&) {
              return proto::ErrorResponse{r.id,
                                          proto::ErrorCode::kInvalidConfig};
            }
          },
          [&](const proto::NamespaceInfoRequest& r) -> proto::Response {
            proto::NamespaceInfoResponse resp;
            resp.id = r.id;
            if (const auto info = table_->namespace_info(r.ns)) {
              resp.exists = true;
              resp.config = info->config;
              resp.capacity = info->capacity;
              resp.accounts = info->accounts;
            }
            return resp;
          },
          // Cluster vocabulary on a standalone server: answered with a
          // typed error so a misconfigured cluster client fails fast
          // instead of timing out (the ClusterServer wrapper intercepts
          // these before they ever reach this table server).
          [&](const proto::ClusterMapRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::ApplyMapRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::HandoffRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
      },
      request);

  // Success replies speak the request's version so v1 clients keep
  // decoding; typed errors are v2-only constructs and always encode as v2
  // (a genuine v1 sender ignores the unknown frame and times out, exactly
  // the pre-v2 behaviour).
  const bool is_error =
      std::holds_alternative<proto::ErrorResponse>(response);
  if (is_error) {
    errored_.fetch_add(1, std::memory_order_relaxed);
  } else {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
  transport_->send(from, proto::encode(response, is_error
                                                     ? proto::kProtocolVersion
                                                     : version));
}

}  // namespace toka::service
