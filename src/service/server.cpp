#include "service/server.hpp"

#include <utility>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace toka::service {

namespace {
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;
}  // namespace

Server::Server(AccountTable& table, runtime::Transport& transport)
    : table_(&table), transport_(&transport) {
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

Server::~Server() { transport_->set_handler({}); }

void Server::on_frame(NodeId from, std::vector<std::byte> payload) {
  protocol::Request request;
  try {
    request = protocol::decode_request(payload);
  } catch (const util::IoError&) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<std::byte> reply = std::visit(
      Overloaded{
          [&](const protocol::AcquireRequest& r) {
            const AcquireResult res = table_->acquire(r.key, r.tokens);
            return protocol::encode(
                protocol::AcquireResponse{r.id, res.granted, res.balance});
          },
          [&](const protocol::RefundRequest& r) {
            const RefundResult res = table_->refund(r.key, r.tokens);
            return protocol::encode(
                protocol::RefundResponse{r.id, res.accepted, res.balance});
          },
          [&](const protocol::QueryRequest& r) {
            const QueryResult res = table_->query(r.key);
            return protocol::encode(
                protocol::QueryResponse{r.id, res.balance, res.exists});
          },
          [&](const protocol::BatchAcquireRequest& r) {
            protocol::BatchAcquireResponse resp;
            resp.id = r.id;
            resp.results = table_->acquire_batch(r.ops);
            return protocol::encode(resp);
          },
      },
      request);
  served_.fetch_add(1, std::memory_order_relaxed);
  transport_->send(from, std::move(reply));
}

}  // namespace toka::service
