#include "service/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "service/protocol.hpp"
#include "util/error.hpp"

namespace toka::service {

namespace {
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// `t` on obs::Tracer's timebase (both are the steady clock, so this is
/// just the unit change — spans and elapsed_us stay directly comparable).
std::int64_t tracer_us(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             t.time_since_epoch())
      .count();
}

/// Retry hint for ops bounced off a full shard-owner queue when the
/// admission valve is disabled: a full queue drains in well under this.
constexpr TimeUs kQueueFullRetryUs = 100;
}  // namespace

/// Heap context carried through a ShardEngine completion: everything the
/// worker needs to encode and send the reply from its own thread.
struct Server::Pending {
  Server* server = nullptr;
  NodeId from = 0;
  std::uint64_t id = 0;
  std::uint8_t version = protocol::kProtocolVersion;
  std::chrono::steady_clock::time_point t0{};
  TraceInfo trace{};
  NamespaceId ns = kDefaultNamespace;  ///< for the cork span's identity
  std::uint64_t key = 0;
};

Server::Server(AccountTable& table, runtime::Transport& transport,
               ServerOptions options)
    : table_(&table),
      transport_(&transport),
      engine_(options.engine),
      tracer_(options.tracer),
      node_(options.node),
      registry_(options.registry),
      admission_(options.admission),
      timed_(options.registry != nullptr || options.admission.enabled) {
  if (engine_ != nullptr) {
    TOKA_CHECK_MSG(&engine_->table() == table_,
                   "ServerOptions::engine must run on the server's table");
  }
  if (registry_) register_metrics();
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

Server::~Server() {
  // Quiesce first: once the handler is detached no request thread can
  // still be recording into the histogram the unregistration frees. With
  // an engine attached, also wait out queued ops — their completions send
  // through transport_ and record into latency_.
  transport_->set_handler({});
  if (engine_ != nullptr) engine_->drain();
  if (registry_) {
    for (const std::string& name : metric_names_) registry_->remove(name);
  }
}

void Server::register_metrics() {
  const auto add = [&](const std::string& name) {
    metric_names_.push_back(name);
    return name;
  };
  latency_ = &registry_->histogram(add("tokend_request_latency_us"));
  registry_->counter_fn(add("tokend_requests_served"), [this] {
    return static_cast<double>(served_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokend_requests_errored"), [this] {
    return static_cast<double>(errored_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokend_requests_malformed"), [this] {
    return static_cast<double>(malformed_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokend_requests_shed"), [this] {
    return static_cast<double>(shed_.load(std::memory_order_relaxed));
  });
  registry_->gauge(add("tokend_namespaces"), [t = table_] {
    return static_cast<double>(t->namespace_count());
  });
  registry_->gauge(add("tokend_accounts"), [this] {
    return static_cast<double>(swept_account_count());
  });
  // The admission bucket doubles as the queue-depth proxy: `used` is how
  // much of the current interval's budget the arrival stream has consumed.
  registry_->gauge(add("tokend_admission_budget"), [this] {
    return static_cast<double>(admission_.budget());
  });
  registry_->gauge(add("tokend_admission_used"), [this] {
    return static_cast<double>(admission_.used());
  });
  registry_->gauge(add("tokend_service_time_ewma_us"),
                   [this] { return admission_.ewma_service_us(); });
  // Table counters come from one stats() sweep per metric read (quiesced
  // when a shard engine owns the table); scrapes are rare enough that the
  // simplicity wins.
  registry_->counter_fn(add("tokend_acquires"), [this] {
    return static_cast<double>(swept_stats().acquires);
  });
  registry_->counter_fn(add("tokend_tokens_granted"), [this] {
    return static_cast<double>(swept_stats().tokens_granted);
  });
  registry_->counter_fn(add("tokend_refunds_dropped"), [this] {
    return static_cast<double>(swept_stats().refunds_dropped);
  });
  registry_->counter_fn(add("tokend_accounts_evicted"), [this] {
    return static_cast<double>(swept_stats().accounts_evicted);
  });
  // The online §3.4 watchdog (ServiceConfig::watchdog_sample): checks is
  // how many send-anchored windows the sampled keys re-verified; any
  // nonzero violations means a *real* burst-bound breach reached a client.
  registry_->counter_fn(add("tokend_invariant_checks"), [this] {
    return static_cast<double>(swept_stats().watchdog_checks);
  });
  registry_->counter_fn(add("tokend_invariant_violations"), [this] {
    return static_cast<double>(swept_stats().watchdog_violations);
  });
  registry_->gauge(add("tokend_hot_key_share"), [this] {
    const auto top = swept_hot_keys(1);
    const std::uint64_t acquires = swept_stats().acquires;
    if (top.empty() || acquires == 0) return 0.0;
    return static_cast<double>(top.front().count) /
           static_cast<double>(acquires);
  });
  registry_->gauge(add("tokend_batch_hint"), [this] {
    return static_cast<double>(batch_hint());
  });
}

TableStats Server::swept_stats() const {
  if (engine_ != nullptr)
    return engine_->quiesced([this] { return table_->stats(); });
  return table_->stats();
}

std::size_t Server::swept_account_count() const {
  if (engine_ != nullptr)
    return engine_->quiesced([this] { return table_->account_count(); });
  return table_->account_count();
}

std::vector<AccountTable::HotKey> Server::swept_hot_keys(
    std::size_t n) const {
  if (engine_ != nullptr)
    return engine_->quiesced([this, n] { return table_->hot_keys(n); });
  return table_->hot_keys(n);
}

std::int64_t Server::batch_hint() const {
  const auto top = swept_hot_keys(1);
  const std::uint64_t acquires = swept_stats().acquires;
  if (top.empty() || acquires < 64) return 1;
  const double share = static_cast<double>(top.front().count) /
                       static_cast<double>(acquires);
  if (share < 0.125) return 1;  // traffic spread out: batching buys little
  return std::clamp<std::int64_t>(static_cast<std::int64_t>(share * 64.0), 1,
                                  64);
}

void Server::on_frame(NodeId from, std::vector<std::byte> payload) {
  namespace proto = protocol;
  const auto t0 = std::chrono::steady_clock::now();

  // Header first (10 fixed bytes): it classifies garbage without paying a
  // decode, and gives the admission valve an id to answer with before any
  // per-request work happens.
  const std::optional<proto::FrameHeader> head =
      proto::try_parse_header(payload);
  if (!head.has_value() || head->is_response) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  const TraceInfo trace{head->traced, head->sampled, head->trace_id};

  const bool head_is_data_op = head->type == proto::MsgType::kAcquire ||
                               head->type == proto::MsgType::kRefund ||
                               head->type == proto::MsgType::kQuery ||
                               head->type == proto::MsgType::kBatchAcquire;
  if (head_is_data_op && admission_.enabled()) {
    const TimeUs now = table_->clock().now_us();
    if (!admission_.try_admit(now)) {
      // Shed: typed kOverloaded with a retry-after hint, charged to no
      // budget and touching no table state. Admin/cluster/stats frames are
      // never shed — an overloaded server must stay operable.
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr) {
        // The body was never decoded, so the span has no key — the shed
        // decision itself (forced into the recorder) is the signal.
        tracer_->record(obs::Stage::kShed, obs::Decision::kShed,
                        trace.trace_id, 0, kDefaultNamespace, tracer_us(t0),
                        0, trace.sampled);
      }
      transport_->send(
          from, proto::encode(proto::ErrorResponse{
                    head->id, proto::ErrorCode::kOverloaded,
                    admission_.retry_after_us(now)}));
      return;
    }
  }

  std::uint8_t version = proto::kProtocolVersion;
  proto::Request request;
  try {
    request = proto::decode_request(payload, version);
  } catch (const util::IoError&) {
    // The header decoded but the body did not: the sender gets a typed
    // error it can correlate.
    errored_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr) {
      tracer_->record(obs::Stage::kDecode, obs::Decision::kError,
                      trace.trace_id, 0, kDefaultNamespace, tracer_us(t0),
                      obs::Tracer::now_us() - tracer_us(t0), trace.sampled);
    }
    transport_->send(from,
                     proto::encode(proto::ErrorResponse{
                         head->id, proto::ErrorCode::kMalformedBody}));
    return;
  }

  // Data ops on a namespace that does not exist get a typed error before
  // touching the table (namespaces are never deleted, so the check cannot
  // race a removal). Admin and cluster requests skip the precheck — they
  // either create the namespace or don't address one.
  const std::uint64_t id = proto::request_id(request);
  const bool is_data_op = std::holds_alternative<proto::AcquireRequest>(request) ||
                          std::holds_alternative<proto::RefundRequest>(request) ||
                          std::holds_alternative<proto::QueryRequest>(request) ||
                          std::holds_alternative<proto::BatchAcquireRequest>(request);
  if (is_data_op && !table_->has_namespace(proto::namespace_of(request))) {
    errored_.fetch_add(1, std::memory_order_relaxed);
    if (tracer_ != nullptr && trace.traced) {
      tracer_->record(obs::Stage::kDecode, obs::Decision::kError,
                      trace.trace_id, 0, proto::namespace_of(request),
                      tracer_us(t0), obs::Tracer::now_us() - tracer_us(t0),
                      trace.sampled);
    }
    transport_->send(from, proto::encode(proto::ErrorResponse{
                               id, proto::ErrorCode::kUnknownNamespace}));
    return;
  }

  // Shard-per-thread plane: hand the decoded op to its owner worker and
  // return — the reply is sent from the worker's completion. Admin,
  // cluster and stats requests stay on this thread (they quiesce the
  // engine where they sweep the table).
  if (engine_ != nullptr && is_data_op) {
    dispatch_engine(from, std::move(request), version, t0, trace);
    return;
  }

  // Inline (striped-lock) execution: the trace's execute span covers the
  // table call on this thread; there is no queue-wait or cork stage here.
  obs::Decision inline_decision = obs::Decision::kNone;
  const std::int64_t t_exec = tracer_ != nullptr && trace.traced
                                  ? obs::Tracer::now_us()
                                  : 0;
  proto::Response response = std::visit(
      Overloaded{
          [&](const proto::AcquireRequest& r) -> proto::Response {
            const AcquireResult res = table_->acquire(r.ns, r.key, r.tokens);
            inline_decision = res.granted == 0 && r.tokens > 0
                                  ? obs::Decision::kDenied
                                  : (res.fresh ? obs::Decision::kFresh
                                               : obs::Decision::kBank);
            return proto::AcquireResponse{r.id, res.granted, res.balance};
          },
          [&](const proto::RefundRequest& r) -> proto::Response {
            const RefundResult res = table_->refund(r.ns, r.key, r.tokens);
            inline_decision = obs::Decision::kRefund;
            return proto::RefundResponse{r.id, res.accepted, res.balance};
          },
          [&](const proto::QueryRequest& r) -> proto::Response {
            const QueryResult res = table_->query(r.ns, r.key);
            return proto::QueryResponse{r.id, res.balance, res.exists};
          },
          [&](const proto::BatchAcquireRequest& r) -> proto::Response {
            proto::BatchAcquireResponse resp;
            resp.id = r.id;
            resp.results = table_->acquire_batch(r.ns, r.ops);
            return resp;
          },
          [&](const proto::ConfigureNamespaceRequest& r) -> proto::Response {
            try {
              // Reconfiguring can purge the namespace's accounts — a
              // whole-table sweep, so it quiesces the engine when one owns
              // the shards.
              const bool created =
                  engine_ != nullptr
                      ? engine_->quiesced([&] {
                          return table_->configure_namespace(r.ns, r.config);
                        })
                      : table_->configure_namespace(r.ns, r.config);
              return proto::ConfigureNamespaceResponse{
                  r.id, created, table_->capacity_bound(r.ns)};
            } catch (const util::InvariantError&) {
              return proto::ErrorResponse{r.id,
                                          proto::ErrorCode::kInvalidConfig};
            }
          },
          [&](const proto::NamespaceInfoRequest& r) -> proto::Response {
            proto::NamespaceInfoResponse resp;
            resp.id = r.id;
            const auto info =
                engine_ != nullptr
                    ? engine_->quiesced(
                          [&] { return table_->namespace_info(r.ns); })
                    : table_->namespace_info(r.ns);
            if (info) {
              resp.exists = true;
              resp.config = info->config;
              resp.capacity = info->capacity;
              resp.accounts = info->accounts;
            }
            return resp;
          },
          // Cluster vocabulary on a standalone server: answered with a
          // typed error so a misconfigured cluster client fails fast
          // instead of timing out (the ClusterServer wrapper intercepts
          // these before they ever reach this table server).
          [&](const proto::ClusterMapRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::ApplyMapRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::HandoffRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::ReplicateRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::ReplicaAckRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::PromoteRequest& r) -> proto::Response {
            return proto::ErrorResponse{r.id, proto::ErrorCode::kUnsupported};
          },
          [&](const proto::StatsRequest& r) -> proto::Response {
            proto::StatsResponse resp;
            resp.id = r.id;
            if (registry_) {
              const std::vector<obs::Metric> metrics = registry_->collect();
              resp.entries.reserve(
                  std::min(metrics.size(), proto::kMaxStatsEntries));
              for (const obs::Metric& m : metrics) {
                if (resp.entries.size() >= proto::kMaxStatsEntries) break;
                proto::StatsEntry e;
                e.name = m.name.substr(0, proto::kMaxStatsNameLen);
                e.kind = static_cast<std::uint8_t>(m.kind);
                e.value = m.value;
                e.p50 = m.p50;
                e.p90 = m.p90;
                e.p99 = m.p99;
                e.max = m.max;
                e.sum = m.sum;
                // Raw log-linear buckets ride along for histograms so a
                // cluster reader can merge nodes without losing the 1/16
                // quantile bound (occupied buckets only; <= kMaxStatsBuckets
                // by construction — the histogram has 960 bucket slots).
                e.buckets.reserve(m.buckets.size());
                for (const obs::HistogramBucket& b : m.buckets)
                  e.buckets.push_back(proto::StatsBucket{b.index, b.count});
                resp.entries.push_back(std::move(e));
              }
            }
            return resp;
          },
          [&](const proto::TracesRequest& r) -> proto::Response {
            proto::TracesResponse resp;
            resp.id = r.id;
            if (tracer_ != nullptr) {
              std::size_t cap = proto::kMaxTraceSpans;
              if (r.max_spans > 0)
                cap = std::min<std::size_t>(cap, r.max_spans);
              const std::vector<obs::SpanRecord> spans =
                  tracer_->snapshot(cap);
              resp.spans.reserve(spans.size());
              for (const obs::SpanRecord& s : spans) {
                proto::TraceSpan out;
                out.trace_id = s.trace_id;
                out.key = s.key;
                out.start_us = s.start_us;
                out.dur_us = s.dur_us;
                out.ns = s.ns;
                out.node = node_;
                out.stage = static_cast<std::uint8_t>(s.stage);
                out.decision = static_cast<std::uint8_t>(s.decision);
                out.flags = s.flags;
                resp.spans.push_back(out);
              }
            }
            return resp;
          },
      },
      request);

  // Success replies speak the request's version so v1 clients keep
  // decoding; typed errors are v2-only constructs and always encode as v2
  // (a genuine v1 sender ignores the unknown frame and times out, exactly
  // the pre-v2 behaviour).
  const bool is_error =
      std::holds_alternative<proto::ErrorResponse>(response);
  if (is_error) {
    errored_.fetch_add(1, std::memory_order_relaxed);
  } else {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
  transport_->send(from, proto::encode(response, is_error
                                                     ? proto::kProtocolVersion
                                                     : version));
  if (tracer_ != nullptr && trace.traced && is_data_op) {
    const std::uint64_t key = std::visit(
        [](const auto& r) -> std::uint64_t {
          if constexpr (requires { r.key; }) return r.key;
          return 0;  // batch acquires span many keys
        },
        request);
    tracer_->record(obs::Stage::kDecode, obs::Decision::kNone, trace.trace_id,
                    key, proto::namespace_of(request), tracer_us(t0),
                    t_exec - tracer_us(t0), trace.sampled);
    tracer_->record(obs::Stage::kExecute,
                    is_error ? obs::Decision::kError : inline_decision,
                    trace.trace_id, key, proto::namespace_of(request), t_exec,
                    obs::Tracer::now_us() - t_exec, trace.sampled);
  }
  if (timed_ && is_data_op) {
    const double us = elapsed_us(t0);
    if (latency_) latency_->observe(us);
    if (admission_.enabled()) admission_.record_service_time_us(us);
  }
}

void Server::dispatch_engine(NodeId from, protocol::Request&& request,
                             std::uint8_t version,
                             std::chrono::steady_clock::time_point t0,
                             const TraceInfo& trace) {
  namespace proto = protocol;
  const std::uint64_t id = proto::request_id(request);

  if (auto* batch = std::get_if<proto::BatchAcquireRequest>(&request)) {
    auto pending = std::make_unique<Pending>();
    *pending = Pending{this, from, id, version, t0, trace, batch->ns, 0};
    if (!engine_->submit_batch(batch->ns, std::move(batch->ops),
                               &Server::complete_engine_batch, pending.get(),
                               trace.traced ? trace.trace_id : 0,
                               trace.sampled)) {
      shed_queue_full(from, id, trace, batch->ns, 0);
      return;  // pending frees; nothing was enqueued
    }
    pending.release();  // owned by the completion now
    return;
  }

  ShardOp op;
  std::visit(Overloaded{
                 [&](const proto::AcquireRequest& r) {
                   op.kind = ShardOp::Kind::kAcquire;
                   op.ns = r.ns;
                   op.key = r.key;
                   op.tokens = r.tokens;
                 },
                 [&](const proto::RefundRequest& r) {
                   op.kind = ShardOp::Kind::kRefund;
                   op.ns = r.ns;
                   op.key = r.key;
                   op.tokens = r.tokens;
                 },
                 [&](const proto::QueryRequest& r) {
                   op.kind = ShardOp::Kind::kQuery;
                   op.ns = r.ns;
                   op.key = r.key;
                 },
                 [](const auto&) {},  // unreachable: is_data_op gated
             },
             request);
  auto pending = std::make_unique<Pending>();
  *pending = Pending{this, from, id, version, t0, trace, op.ns, op.key};
  if (tracer_ != nullptr && trace.traced) {
    // The decode span closes here: frame arrival -> op submitted. The
    // submit timestamp seeds the worker's queue-wait span.
    op.traced = true;
    op.trace_sampled = trace.sampled;
    op.trace_id = trace.trace_id;
    op.t_submit_us = obs::Tracer::now_us();
    tracer_->record(obs::Stage::kDecode, obs::Decision::kNone, trace.trace_id,
                    op.key, op.ns, tracer_us(t0),
                    op.t_submit_us - tracer_us(t0), trace.sampled);
  }
  op.done = &Server::complete_engine_op;
  op.ctx = pending.get();
  const NamespaceId op_ns = op.ns;
  const std::uint64_t op_key = op.key;
  if (!engine_->try_submit(std::move(op))) {
    shed_queue_full(from, id, trace, op_ns, op_key);
    return;  // pending frees; nothing was enqueued
  }
  pending.release();  // owned by the completion now
}

void Server::complete_engine_op(ShardOp& op, void* ctx) {
  namespace proto = protocol;
  std::unique_ptr<Pending> p(static_cast<Pending*>(ctx));
  proto::Response response;
  if (!op.ok) {
    // Rejected before touching an account (invalid arguments; the
    // namespace precheck already ran on the IO thread and namespaces are
    // never deleted).
    response = proto::ErrorResponse{p->id, proto::ErrorCode::kMalformedBody};
  } else {
    switch (op.kind) {
      case ShardOp::Kind::kAcquire:
        response = proto::AcquireResponse{p->id, op.out_a, op.out_b};
        break;
      case ShardOp::Kind::kRefund:
        response = proto::RefundResponse{p->id, op.out_a, op.out_b};
        break;
      case ShardOp::Kind::kQuery:
        response = proto::QueryResponse{p->id, op.out_a, op.out_b != 0};
        break;
      case ShardOp::Kind::kBatchGroup:
        return;  // unreachable: batches complete via complete_engine_batch
    }
  }
  p->server->finish_engine_reply(p->from, response, *p);
}

void Server::complete_engine_batch(EngineBatch& batch, void* ctx) {
  namespace proto = protocol;
  std::unique_ptr<Pending> p(static_cast<Pending*>(ctx));
  proto::BatchAcquireResponse resp;
  resp.id = p->id;
  resp.results = std::move(batch.results);
  p->server->finish_engine_reply(p->from, resp, *p);
}

void Server::finish_engine_reply(NodeId from,
                                 const protocol::Response& response,
                                 const Pending& p) {
  namespace proto = protocol;
  const bool is_error = std::holds_alternative<proto::ErrorResponse>(response);
  if (is_error) {
    errored_.fetch_add(1, std::memory_order_relaxed);
  } else {
    served_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::int64_t t_cork = tracer_ != nullptr && p.trace.traced
                                  ? obs::Tracer::now_us()
                                  : 0;
  transport_->send(from, proto::encode(response, is_error
                                                     ? proto::kProtocolVersion
                                                     : p.version));
  if (tracer_ != nullptr && p.trace.traced) {
    // Cork span: completion -> reply handed to the transport (on the epoll
    // mesh this is the append into the loop's cork buffer; the flush rides
    // the same loop iteration).
    tracer_->record(obs::Stage::kCork,
                    is_error ? obs::Decision::kError : obs::Decision::kNone,
                    p.trace.trace_id, p.key, p.ns, t_cork,
                    obs::Tracer::now_us() - t_cork, p.trace.sampled);
  }
  if (timed_) {
    // Queue wait counts as service time on purpose: it is exactly the
    // signal the adaptive admission valve needs to see overload early.
    const double us = elapsed_us(p.t0);
    if (latency_) latency_->observe(us);
    if (admission_.enabled()) admission_.record_service_time_us(us);
  }
}

void Server::shed_queue_full(NodeId from, std::uint64_t id,
                             const TraceInfo& trace, NamespaceId ns,
                             std::uint64_t key) {
  namespace proto = protocol;
  shed_.fetch_add(1, std::memory_order_relaxed);
  if (tracer_ != nullptr) {
    tracer_->record(obs::Stage::kShed, obs::Decision::kShed, trace.trace_id,
                    key, ns, obs::Tracer::now_us(), 0, trace.sampled);
  }
  const TimeUs now = table_->clock().now_us();
  const TimeUs retry = admission_.enabled() ? admission_.retry_after_us(now)
                                            : kQueueFullRetryUs;
  transport_->send(from, proto::encode(proto::ErrorResponse{
                             id, proto::ErrorCode::kOverloaded, retry}));
}

}  // namespace toka::service
