#include "apps/push_gossip.hpp"

namespace toka::apps {

PushGossipApp::PushGossipApp(std::size_t node_count, bool enable_rejoin_pull)
    : ts_(node_count, 0), enable_rejoin_pull_(enable_rejoin_pull) {}

GossipBody PushGossipApp::create_message(NodeId self, Sim&) {
  return GossipBody{ts_[self], GossipBody::kUpdate};
}

bool PushGossipApp::update_state(NodeId self,
                                 const sim::Arrival<GossipBody>& msg, Sim&) {
  // Useful iff strictly fresher than the stored update (§3.2).
  if (msg.body.ts <= ts_[self]) return false;
  online_ts_sum_ += msg.body.ts - ts_[self];
  ts_[self] = msg.body.ts;
  return true;
}

bool PushGossipApp::handle_special(NodeId self,
                                   const sim::Arrival<GossipBody>& msg,
                                   Sim& sim) {
  if (msg.body.kind != GossipBody::kPullRequest) return false;
  // Answer with the stored update iff a token can be burnt for it
  // (§4.1.2); otherwise the pull goes unanswered.
  if (sim.try_spend(self, 1) == 1) sim.send_app_message(self, msg.from);
  return true;
}

void PushGossipApp::on_online(NodeId self, Sim& sim) {
  online_ts_sum_ += ts_[self];
  if (!enable_rejoin_pull_) return;
  // One free initial pull request to a random online neighbor (§4.1.2).
  const NodeId peer = sim.select_peer(self);
  if (peer != kNoNode)
    sim.send_control_message(self, peer,
                             GossipBody{0, GossipBody::kPullRequest});
}

void PushGossipApp::on_offline(NodeId self, Sim&) {
  online_ts_sum_ -= ts_[self];
}

void PushGossipApp::inject(Sim& sim) {
  // Uniform random online node; offline nodes cannot receive updates.
  const std::size_t n = sim.node_count();
  if (sim.online_count() == 0) {
    ++injected_;  // the update happened, nobody heard about it
    return;
  }
  NodeId target;
  do {
    target = static_cast<NodeId>(sim.app_rng().below(n));
  } while (!sim.online(target));
  ++injected_;
  if (injected_ > ts_[target]) {
    online_ts_sum_ += injected_ - ts_[target];
    ts_[target] = injected_;
  }
}

void PushGossipApp::start_injections(Sim& sim, TimeUs period) {
  sim.schedule_repeating(period, period, [this, &sim] { inject(sim); });
}

double PushGossipApp::metric(const Sim& sim) const {
  if (sim.online_count() == 0) return static_cast<double>(injected_);
  const double mean_ts = static_cast<double>(online_ts_sum_) /
                         static_cast<double>(sim.online_count());
  return static_cast<double>(injected_) - mean_ts;
}

}  // namespace toka::apps
