#include "apps/chaotic_iteration.hpp"

#include "analysis/eigen.hpp"
#include "util/error.hpp"

namespace toka::apps {

ChaoticIterationApp::ChaoticIterationApp(const net::InWeights& weights)
    : weights_(&weights) {
  const std::size_t n = weights.node_count();
  buffer_offset_.assign(n + 1, 0);
  for (NodeId i = 0; i < n; ++i)
    buffer_offset_[i + 1] = buffer_offset_[i] + weights.in_edges(i).size();
  buffer_.assign(buffer_offset_[n], 1.0);
  x_.resize(n);
  for (NodeId i = 0; i < n; ++i) x_[i] = recompute(i);
}

double ChaoticIterationApp::recompute(NodeId i) const {
  const auto edges = weights_->in_edges(i);
  const std::size_t base = buffer_offset_[i];
  double acc = 0.0;
  for (std::size_t j = 0; j < edges.size(); ++j)
    acc += edges[j].weight * buffer_[base + j];
  return acc;
}

WeightMsg ChaoticIterationApp::create_message(NodeId self, Sim&) {
  return WeightMsg{x_[self]};
}

bool ChaoticIterationApp::update_state(NodeId self,
                                       const sim::Arrival<WeightMsg>& msg,
                                       Sim&) {
  const std::ptrdiff_t idx = weights_->in_index(self, msg.from);
  TOKA_CHECK_MSG(idx >= 0, "message from " << msg.from << " to " << self
                                           << " without an edge");
  buffer_[buffer_offset_[self] + static_cast<std::size_t>(idx)] = msg.body.x;
  const double new_x = recompute(self);
  // Useful iff the local state changed (§3.2). Exact comparison: any
  // numerical change counts, matching the paper's Boolean usefulness.
  if (new_x == x_[self]) return false;
  x_[self] = new_x;
  return true;
}

double ChaoticIterationApp::angle_to(
    const std::vector<double>& reference) const {
  return analysis::angle_between(x_, reference);
}

}  // namespace toka::apps
