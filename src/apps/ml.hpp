// Real machine-learning extension for gossip learning.
//
// The paper's evaluation only simulates model age (§3.2), but the protocol
// is designed for actual SGD over fully distributed data (one example per
// node, §2.2). This module provides that real mode: linear models trained
// by SGD walk the network inside gossip messages. It demonstrates that the
// token account service composes with a real workload, and powers the
// federated-learning example.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace toka::apps {

/// Supported SGD objectives.
enum class MlTask {
  kLinearRegression,  ///< squared loss
  kLogisticRegression ///< log loss, labels in {-1, +1}
};

/// A dense linear model w·x + b.
struct LinearModel {
  std::vector<double> weights;
  double bias = 0.0;
  std::int64_t age = 0;  ///< number of SGD updates (nodes visited)

  explicit LinearModel(std::size_t dim = 0) : weights(dim, 0.0) {}

  double raw(const std::vector<double>& x) const;

  /// One SGD step on example (x, y) with step size eta / (age + 1)^0.5
  /// (standard decaying schedule); increments age.
  void sgd_step(MlTask task, const std::vector<double>& x, double y,
                double eta);

  /// Squared loss or log loss of this model on one example.
  double loss(MlTask task, const std::vector<double>& x, double y) const;
};

/// One labelled example.
struct Example {
  std::vector<double> x;
  double y = 0.0;
};

/// Synthetic dataset: x ~ N(0, I_dim), y from a random ground-truth linear
/// model (+ Gaussian noise for regression; sign for classification).
struct SyntheticDataset {
  std::vector<Example> examples;
  LinearModel ground_truth;
  MlTask task = MlTask::kLinearRegression;

  /// Mean loss of `model` over all examples.
  double mean_loss(const LinearModel& model) const;
};

SyntheticDataset make_dataset(MlTask task, std::size_t count, std::size_t dim,
                              double noise, util::Rng& rng);

/// Gossip learning with real models: the Algorithm-1 pattern expressed over
/// the token account API, with the same adopt-if-at-least-as-trained rule
/// as the age-only app.
class MlGossipApp final : public sim::NodeLogic<LinearModel> {
 public:
  using Sim = sim::Simulator<LinearModel>;

  /// One example per node: dataset.examples.size() is the node count.
  /// `eta` is the base SGD step size.
  MlGossipApp(const SyntheticDataset& dataset, double eta);

  LinearModel create_message(NodeId self, Sim& sim) override;
  bool update_state(NodeId self, const sim::Arrival<LinearModel>& msg,
                    Sim& sim) override;

  const LinearModel& model(NodeId node) const { return models_.at(node); }

  /// Mean over nodes of the training-set loss of each node's model.
  double mean_loss() const;

  /// Mean model age over all nodes.
  double mean_age() const;

 private:
  const SyntheticDataset* dataset_;
  double eta_;
  std::vector<LinearModel> models_;
};

}  // namespace toka::apps
