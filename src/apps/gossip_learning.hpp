// Gossip learning over the token account API (paper §2.2, §3.2, §4.1.1).
//
// Models perform random walks; each visit "trains" the model on the local
// example. As in the paper's simulations, no actual machine learning is
// needed for the evaluation metric: a model is just an age counter (the
// number of nodes it has visited), and a node adopts a received model iff
// it is at least as trained as the local one. See gossip_learning_ml.hpp
// for the real-SGD extension.
//
// Performance metric (Eq. 6): mean over (online) nodes of n_i(t) / n*(t),
// where n_i is the age of the model held by node i and n*(t) = t/transfer
// is the hop count of an ideal never-delayed walk.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace toka::apps {

/// Message payload: the model's age (number of nodes visited).
struct ModelMsg {
  std::int64_t age = 0;
};

class GossipLearningApp final : public sim::NodeLogic<ModelMsg> {
 public:
  using Sim = sim::Simulator<ModelMsg>;

  explicit GossipLearningApp(std::size_t node_count);

  ModelMsg create_message(NodeId self, Sim& sim) override;
  bool update_state(NodeId self, const sim::Arrival<ModelMsg>& msg,
                    Sim& sim) override;
  void on_online(NodeId self, Sim& sim) override;
  void on_offline(NodeId self, Sim& sim) override;

  /// Age of the model currently held by `node`.
  std::int64_t age(NodeId node) const { return age_.at(node); }

  /// Eq. 6 at simulated time t (> 0): mean_i n_i(t) / n*(t) over online
  /// nodes, with n*(t) = t / transfer_time.
  double metric(const Sim& sim) const;

  /// Sum of ages over online nodes (O(1), maintained incrementally).
  std::int64_t online_age_sum() const { return online_age_sum_; }

 private:
  std::vector<std::int64_t> age_;
  std::int64_t online_age_sum_ = 0;
};

}  // namespace toka::apps
