// One-call experiment harness: configures topology, churn, application and
// strategy, runs the simulation, and returns the paper's metric series plus
// cost counters. All bench binaries and most integration tests go through
// this API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "metrics/timeseries.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace toka::apps {

enum class AppKind { kGossipLearning, kPushGossip, kChaoticIteration };

/// Parses "learning" / "push" / "chaotic"; throws util::IoError otherwise.
AppKind parse_app_kind(const std::string& text);
std::string to_string(AppKind kind);

enum class Scenario {
  kFailureFree,      ///< everyone online, reliable delivery (§4.1)
  kSmartphoneTrace,  ///< synthetic STUNner-style churn (§4.1, Fig. 1)
};

struct ExperimentConfig {
  AppKind app = AppKind::kPushGossip;
  Scenario scenario = Scenario::kFailureFree;

  /// Network size N (paper: 5000 or 500,000).
  std::size_t node_count = 5000;
  /// Out-degree of the fixed random overlay (paper: 20).
  std::size_t k_out = 20;
  /// Watts–Strogatz parameters for chaotic iteration (paper: 4, 0.01).
  std::size_t ws_k = 4;
  double ws_beta = 0.01;

  sim::Timing timing{};  ///< Δ = 172.8 s, transfer = 1.728 s, 1000 periods
  core::StrategyConfig strategy{};
  Tokens initial_tokens = 0;
  /// Ablation switches (see bench/ablation_*): override usefulness to
  /// always-true / use floor instead of randomized rounding / disable the
  /// push-gossip rejoin pull protocol.
  bool force_useful = false;
  core::RoundingMode rounding = core::RoundingMode::kRandomized;
  bool enable_rejoin_pull = true;
  /// Fault injection: independent per-message loss probability.
  double drop_probability = 0.0;
  /// Bootstrap: shortly after t = 0 every node spends one token (if it has
  /// one) to send one message, seeding circulation. Required by purely
  /// reactive strategies (token bucket) that cannot start by themselves;
  /// harmless for the paper's hybrid strategies.
  bool bootstrap_circulation = false;

  /// Metric sampling interval; 0 = app default (Δ/10 for push gossip —
  /// matching the 10 injections per period — Δ otherwise).
  TimeUs sample_interval = 0;
  /// Average-balance sampling interval; 0 = auto (Δ, coarsened for very
  /// large networks so sampling stays o(total work)).
  TimeUs token_sample_interval = 0;
  /// Push gossip injection period; 0 = auto (Δ/10, i.e. 10 fresh updates
  /// per proactive period — 17.28 s at paper scale, §4.1.2).
  TimeUs injection_period = 0;

  /// Trace scenario: number of distinct synthetic 2-day segments to draw
  /// node assignments from; 0 = one private segment per node.
  std::size_t trace_users = 0;

  std::uint64_t seed = 1;

  /// Worker threads for run_averaged's independent seed repetitions
  /// (0 = one per hardware thread). Results are byte-identical for every
  /// value: each seed's run is self-contained and the reduction happens in
  /// seed order after all runs finish.
  std::size_t threads = 1;

  /// Human-readable one-line description.
  std::string describe() const;
};

struct ExperimentResult {
  /// The application's paper metric over time: Eq. 6 ratio (learning,
  /// higher is better), Eq. 7 lag in updates (push, lower is better), or
  /// angle to the true eigenvector in radians (chaotic, lower is better).
  metrics::TimeSeries metric;
  /// Average token balance over online nodes.
  metrics::TimeSeries avg_tokens;
  sim::SimCounters sim_counters;
  /// Sum over nodes of online periods experienced (token grants).
  std::uint64_t total_ticks = 0;
  /// Data messages per online node-period — the communication cost in
  /// units of the proactive baseline's budget (== 1 send per period).
  double cost_per_online_period = 0.0;
};

/// Runs a single seed.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs `seeds` independent repetitions (seed, seed+1, ...) and averages
/// the series pointwise (the paper averages 10 runs); counters are summed
/// and the cost is averaged. Repetitions run on `config.threads` workers;
/// the result is byte-identical regardless of the thread count.
ExperimentResult run_averaged(const ExperimentConfig& config,
                              std::size_t seeds);

}  // namespace toka::apps
