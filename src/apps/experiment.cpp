#include "apps/experiment.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/eigen.hpp"
#include "apps/chaotic_iteration.hpp"
#include "apps/gossip_learning.hpp"
#include "apps/push_gossip.hpp"
#include "net/graph.hpp"
#include "net/weights.hpp"
#include "trace/churn_adapter.hpp"
#include "trace/synthetic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace toka::apps {

AppKind parse_app_kind(const std::string& text) {
  if (text == "learning") return AppKind::kGossipLearning;
  if (text == "push") return AppKind::kPushGossip;
  if (text == "chaotic") return AppKind::kChaoticIteration;
  throw util::IoError("unknown app kind: '" + text + "'");
}

std::string to_string(AppKind kind) {
  switch (kind) {
    case AppKind::kGossipLearning: return "learning";
    case AppKind::kPushGossip: return "push";
    case AppKind::kChaoticIteration: return "chaotic";
  }
  throw util::InvariantError("invalid AppKind");
}

std::string ExperimentConfig::describe() const {
  std::ostringstream os;
  os << to_string(app) << " N=" << node_count << ' ' << strategy.label()
     << (scenario == Scenario::kSmartphoneTrace ? " [trace]" : "")
     << " seed=" << seed;
  return os.str();
}

namespace {

/// Seeds derived deterministically from the experiment seed so that every
/// random component has its own stream.
struct Seeds {
  explicit Seeds(std::uint64_t master) : root(master) {}
  util::Rng root;
  util::Rng graph() { return root.fork(0x6A11); }
  util::Rng churn() { return root.fork(0xC4A1); }
  std::uint64_t sim() { return root.fork(0x51A1).next_u64(); }
};

sim::ChurnSchedule make_churn(const ExperimentConfig& cfg, util::Rng rng) {
  if (cfg.scenario == Scenario::kFailureFree) return {};
  trace::SyntheticTraceConfig trace_cfg;
  trace_cfg.horizon = cfg.timing.horizon;
  const std::size_t users =
      cfg.trace_users == 0 ? cfg.node_count : cfg.trace_users;
  util::Rng gen_rng = rng.fork(1);
  const auto segments =
      trace::generate_segments(trace_cfg, users, gen_rng);
  util::Rng assign_rng = rng.fork(2);
  return trace::make_churn_schedule(segments, cfg.node_count,
                                    cfg.timing.horizon, assign_rng);
}

TimeUs metric_interval(const ExperimentConfig& cfg) {
  if (cfg.sample_interval > 0) return cfg.sample_interval;
  return cfg.app == AppKind::kPushGossip ? cfg.timing.delta / 10
                                         : cfg.timing.delta;
}

TimeUs token_interval(const ExperimentConfig& cfg) {
  if (cfg.token_sample_interval > 0) return cfg.token_sample_interval;
  // Balance sampling walks all nodes; keep it to <= ~1000 sweeps and make
  // sweeps rarer for very large networks.
  TimeUs interval = cfg.timing.delta;
  if (cfg.node_count > 50'000) interval *= 10;
  return interval;
}

template <typename Body, typename App, typename MetricFn, typename SetupFn>
ExperimentResult run_sim(const ExperimentConfig& cfg,
                         const net::Digraph& graph, App& app,
                         sim::ChurnSchedule churn, std::uint64_t sim_seed,
                         MetricFn metric_fn, SetupFn setup_fn) {
  sim::SimConfig sc;
  sc.timing = cfg.timing;
  sc.strategy = cfg.strategy;
  sc.initial_tokens = cfg.initial_tokens;
  sc.allow_overdraft =
      cfg.strategy.kind == core::StrategyKind::kPureReactive;
  sc.force_useful = cfg.force_useful;
  sc.rounding = cfg.rounding;
  sc.drop_probability = cfg.drop_probability;
  sc.seed = sim_seed;

  sim::Simulator<Body> s(graph, app, sc, std::move(churn));
  setup_fn(s);
  if (cfg.bootstrap_circulation) {
    s.schedule(1, [&s] {
      for (NodeId v = 0; v < s.node_count(); ++v) {
        if (!s.online(v)) continue;
        if (s.try_spend(v, 1) != 1) continue;
        const NodeId peer = s.select_peer(v);
        if (peer != kNoNode) s.send_app_message(v, peer);
      }
    });
  }

  ExperimentResult result;
  const TimeUs mi = metric_interval(cfg);
  s.schedule_repeating(mi, mi, [&result, &s, &app, metric_fn] {
    result.metric.add(s.now(), metric_fn(app, s));
  });
  const TimeUs ti = token_interval(cfg);
  s.schedule_repeating(ti, ti, [&result, &s] {
    if (s.online_count() == 0) {
      result.avg_tokens.add(s.now(), 0.0);
      return;
    }
    double sum = 0.0;
    std::size_t online = 0;
    for (NodeId v = 0; v < s.node_count(); ++v) {
      if (!s.online(v)) continue;
      sum += static_cast<double>(s.balance(v));
      ++online;
    }
    result.avg_tokens.add(s.now(), sum / static_cast<double>(online));
  });

  s.run();

  result.sim_counters = s.counters();
  for (NodeId v = 0; v < s.node_count(); ++v)
    result.total_ticks += s.account(v).counters().ticks;
  result.cost_per_online_period =
      result.total_ticks == 0
          ? 0.0
          : static_cast<double>(result.sim_counters.data_messages_sent) /
                static_cast<double>(result.total_ticks);
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  config.timing.check();
  TOKA_CHECK_MSG(config.node_count > 1, "need at least two nodes");
  Seeds seeds(config.seed);

  switch (config.app) {
    case AppKind::kGossipLearning: {
      util::Rng graph_rng = seeds.graph();
      const auto graph =
          net::random_k_out(config.node_count, config.k_out, graph_rng);
      GossipLearningApp app(config.node_count);
      return run_sim<ModelMsg>(
          config, graph, app, make_churn(config, seeds.churn()), seeds.sim(),
          [](const GossipLearningApp& a, const GossipLearningApp::Sim& s) {
            return a.metric(s);
          },
          [](GossipLearningApp::Sim&) {});
    }
    case AppKind::kPushGossip: {
      util::Rng graph_rng = seeds.graph();
      const auto graph =
          net::random_k_out(config.node_count, config.k_out, graph_rng);
      PushGossipApp app(config.node_count, config.enable_rejoin_pull);
      const TimeUs period = config.injection_period > 0
                                ? config.injection_period
                                : config.timing.delta / 10;
      return run_sim<GossipBody>(
          config, graph, app, make_churn(config, seeds.churn()), seeds.sim(),
          [](const PushGossipApp& a, const PushGossipApp::Sim& s) {
            return a.metric(s);
          },
          [&app, period](PushGossipApp::Sim& s) {
            app.start_injections(s, period);
          });
    }
    case AppKind::kChaoticIteration: {
      util::Rng graph_rng = seeds.graph();
      const auto graph = net::watts_strogatz(config.node_count, config.ws_k,
                                             config.ws_beta, graph_rng);
      const net::InWeights weights(graph);
      const analysis::SparseMatrix matrix(weights);
      const auto reference = analysis::power_iteration(matrix);
      ChaoticIterationApp app(weights);
      return run_sim<WeightMsg>(
          config, graph, app, make_churn(config, seeds.churn()), seeds.sim(),
          [eig = reference.eigenvector](const ChaoticIterationApp& a,
                                        const ChaoticIterationApp::Sim&) {
            return a.angle_to(eig);
          },
          [](ChaoticIterationApp::Sim&) {});
    }
  }
  throw util::InvariantError("invalid AppKind");
}

ExperimentResult run_averaged(const ExperimentConfig& config,
                              std::size_t seeds) {
  TOKA_CHECK_MSG(seeds >= 1, "need at least one seed");

  // Each repetition is self-contained (own graph, app, simulator, RNG
  // streams), so they can run concurrently. Every run writes to its own
  // pre-sized slot and the reduction below walks the slots in seed order,
  // so the combined result — including floating-point summation order —
  // is byte-identical for every thread count.
  std::vector<ExperimentResult> runs(seeds);
  auto run_one = [&config, &runs](std::size_t i) {
    ExperimentConfig run_cfg = config;
    run_cfg.seed = config.seed + i;
    runs[i] = run_experiment(run_cfg);
  };
  const std::size_t threads =
      std::min(util::ThreadPool::resolve(config.threads), seeds);
  if (threads <= 1) {
    for (std::size_t i = 0; i < seeds; ++i) run_one(i);
  } else {
    util::ThreadPool pool(threads);
    for (std::size_t i = 0; i < seeds; ++i)
      pool.submit([&run_one, i] { run_one(i); });
    pool.wait_idle();
  }

  std::vector<metrics::TimeSeries> metric_runs;
  std::vector<metrics::TimeSeries> token_runs;
  ExperimentResult combined;
  double cost_sum = 0.0;
  for (ExperimentResult& r : runs) {
    cost_sum += r.cost_per_online_period;
    combined.total_ticks += r.total_ticks;
    combined.sim_counters.data_messages_sent +=
        r.sim_counters.data_messages_sent;
    combined.sim_counters.control_messages_sent +=
        r.sim_counters.control_messages_sent;
    combined.sim_counters.messages_dropped += r.sim_counters.messages_dropped;
    combined.sim_counters.proactive_skipped +=
        r.sim_counters.proactive_skipped;
    combined.sim_counters.reactive_refunded +=
        r.sim_counters.reactive_refunded;
    combined.sim_counters.events_processed += r.sim_counters.events_processed;
    metric_runs.push_back(std::move(r.metric));
    token_runs.push_back(std::move(r.avg_tokens));
  }
  combined.metric = metrics::average(metric_runs);
  combined.avg_tokens = metrics::average(token_runs);
  combined.cost_per_online_period = cost_sum / static_cast<double>(seeds);
  return combined;
}

}  // namespace toka::apps
