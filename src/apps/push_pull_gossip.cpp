#include "apps/push_pull_gossip.hpp"

namespace toka::apps {

PushPullGossipApp::PushPullGossipApp(std::size_t node_count)
    : ts_(node_count, 0) {}

PushPullBody PushPullGossipApp::create_message(NodeId self, Sim&) {
  return PushPullBody{ts_[self], PushPullBody::kUpdate};
}

bool PushPullGossipApp::adopt(NodeId self, std::int64_t ts) {
  if (ts <= ts_[self]) return false;
  online_ts_sum_ += ts - ts_[self];
  ts_[self] = ts;
  return true;
}

bool PushPullGossipApp::update_state(NodeId self,
                                     const sim::Arrival<PushPullBody>& msg,
                                     Sim& sim) {
  const bool useful = adopt(self, msg.body.ts);
  // Pull-style correction: the pushed update was older than ours, so the
  // sender is behind — answer with our fresher update if a token allows.
  // Replies are marked so that a stale reply cannot trigger reply loops.
  if (!useful && msg.body.ts < ts_[self] &&
      msg.body.kind == PushPullBody::kUpdate) {
    if (sim.try_spend(self, 1) == 1) {
      sim.send_control_message(self, msg.from,
                               PushPullBody{ts_[self], PushPullBody::kPullReply});
      ++pull_corrections_;
    }
  }
  return useful;
}

bool PushPullGossipApp::handle_special(NodeId self,
                                       const sim::Arrival<PushPullBody>& msg,
                                       Sim& sim) {
  switch (msg.body.kind) {
    case PushPullBody::kPullRequest:
      if (sim.try_spend(self, 1) == 1) sim.send_app_message(self, msg.from);
      return true;
    case PushPullBody::kPullReply:
      // Adopt silently; replies are corrections, not gossip triggers (the
      // token was already burnt by the replier).
      adopt(self, msg.body.ts);
      return true;
    case PushPullBody::kUpdate:
      return false;
  }
  return false;
}

void PushPullGossipApp::on_online(NodeId self, Sim& sim) {
  online_ts_sum_ += ts_[self];
  const NodeId peer = sim.select_peer(self);
  if (peer != kNoNode)
    sim.send_control_message(self, peer,
                             PushPullBody{0, PushPullBody::kPullRequest});
}

void PushPullGossipApp::on_offline(NodeId self, Sim&) {
  online_ts_sum_ -= ts_[self];
}

void PushPullGossipApp::inject(Sim& sim) {
  const std::size_t n = sim.node_count();
  ++injected_;
  if (sim.online_count() == 0) return;
  NodeId target;
  do {
    target = static_cast<NodeId>(sim.app_rng().below(n));
  } while (!sim.online(target));
  adopt(target, injected_);
}

void PushPullGossipApp::start_injections(Sim& sim, TimeUs period) {
  sim.schedule_repeating(period, period, [this, &sim] { inject(sim); });
}

double PushPullGossipApp::metric(const Sim& sim) const {
  if (sim.online_count() == 0) return static_cast<double>(injected_);
  const double mean_ts = static_cast<double>(online_ts_sum_) /
                         static_cast<double>(sim.online_count());
  return static_cast<double>(injected_) - mean_ts;
}

double PushPullGossipApp::informed_fraction(const Sim& sim) const {
  if (sim.online_count() == 0) return 0.0;
  std::size_t informed = 0;
  std::size_t online = 0;
  for (NodeId v = 0; v < ts_.size(); ++v) {
    if (!sim.online(v)) continue;
    ++online;
    if (ts_[v] == injected_) ++informed;
  }
  return static_cast<double>(informed) / static_cast<double>(online);
}

}  // namespace toka::apps
