#include "apps/ml.hpp"

#include <cmath>

#include "util/error.hpp"

namespace toka::apps {

double LinearModel::raw(const std::vector<double>& x) const {
  TOKA_CHECK_MSG(x.size() == weights.size(), "feature dimension mismatch");
  double acc = bias;
  for (std::size_t i = 0; i < x.size(); ++i) acc += weights[i] * x[i];
  return acc;
}

void LinearModel::sgd_step(MlTask task, const std::vector<double>& x,
                           double y, double eta) {
  const double step = eta / std::sqrt(static_cast<double>(age) + 1.0);
  const double z = raw(x);
  double grad_z = 0.0;  // d loss / d z
  switch (task) {
    case MlTask::kLinearRegression:
      grad_z = z - y;  // 1/2 (z-y)^2
      break;
    case MlTask::kLogisticRegression: {
      // log(1 + exp(-y z)), y in {-1, +1}
      const double margin = y * z;
      grad_z = -y / (1.0 + std::exp(margin));
      break;
    }
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    weights[i] -= step * grad_z * x[i];
  bias -= step * grad_z;
  ++age;
}

double LinearModel::loss(MlTask task, const std::vector<double>& x,
                         double y) const {
  const double z = raw(x);
  switch (task) {
    case MlTask::kLinearRegression: {
      const double d = z - y;
      return 0.5 * d * d;
    }
    case MlTask::kLogisticRegression: {
      const double margin = y * z;
      // Numerically stable log(1 + exp(-margin)).
      return margin > 0 ? std::log1p(std::exp(-margin))
                        : -margin + std::log1p(std::exp(margin));
    }
  }
  throw util::InvariantError("invalid MlTask");
}

double SyntheticDataset::mean_loss(const LinearModel& model) const {
  TOKA_CHECK(!examples.empty());
  double sum = 0.0;
  for (const Example& e : examples) sum += model.loss(task, e.x, e.y);
  return sum / static_cast<double>(examples.size());
}

SyntheticDataset make_dataset(MlTask task, std::size_t count, std::size_t dim,
                              double noise, util::Rng& rng) {
  TOKA_CHECK(count > 0 && dim > 0);
  SyntheticDataset ds;
  ds.task = task;
  ds.ground_truth = LinearModel(dim);
  for (double& w : ds.ground_truth.weights) w = rng.normal(0.0, 1.0);
  ds.ground_truth.bias = rng.normal(0.0, 0.5);
  ds.examples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Example e;
    e.x.resize(dim);
    for (double& v : e.x) v = rng.normal(0.0, 1.0);
    const double clean = ds.ground_truth.raw(e.x);
    switch (task) {
      case MlTask::kLinearRegression:
        e.y = clean + rng.normal(0.0, noise);
        break;
      case MlTask::kLogisticRegression:
        e.y = (clean + rng.normal(0.0, noise)) >= 0.0 ? 1.0 : -1.0;
        break;
    }
    ds.examples.push_back(std::move(e));
  }
  return ds;
}

MlGossipApp::MlGossipApp(const SyntheticDataset& dataset, double eta)
    : dataset_(&dataset), eta_(eta) {
  TOKA_CHECK(!dataset.examples.empty());
  const std::size_t dim = dataset.examples.front().x.size();
  models_.assign(dataset.examples.size(), LinearModel(dim));
}

LinearModel MlGossipApp::create_message(NodeId self, Sim&) {
  return models_[self];
}

bool MlGossipApp::update_state(NodeId self,
                               const sim::Arrival<LinearModel>& msg, Sim&) {
  if (msg.body.age < models_[self].age) return false;
  LinearModel incoming = msg.body;
  const Example& e = dataset_->examples[self];
  incoming.sgd_step(dataset_->task, e.x, e.y, eta_);
  models_[self] = std::move(incoming);
  return true;
}

double MlGossipApp::mean_loss() const {
  double sum = 0.0;
  for (const LinearModel& m : models_) sum += dataset_->mean_loss(m);
  return sum / static_cast<double>(models_.size());
}

double MlGossipApp::mean_age() const {
  double sum = 0.0;
  for (const LinearModel& m : models_)
    sum += static_cast<double>(m.age);
  return sum / static_cast<double>(models_.size());
}

}  // namespace toka::apps
