#include "apps/gossip_learning.hpp"

namespace toka::apps {

GossipLearningApp::GossipLearningApp(std::size_t node_count)
    : age_(node_count, 0) {}

ModelMsg GossipLearningApp::create_message(NodeId self, Sim&) {
  return ModelMsg{age_[self]};
}

bool GossipLearningApp::update_state(NodeId self,
                                     const sim::Arrival<ModelMsg>& msg,
                                     Sim&) {
  // The node keeps the *most trained* model: a received model younger than
  // the local one (fewer visited nodes) is discarded and useless; otherwise
  // it is trained on the local example (age + 1) and adopted (§3.2).
  if (msg.body.age < age_[self]) return false;
  const std::int64_t new_age = msg.body.age + 1;
  online_age_sum_ += new_age - age_[self];  // node is online when receiving
  age_[self] = new_age;
  return true;
}

void GossipLearningApp::on_online(NodeId self, Sim&) {
  online_age_sum_ += age_[self];
}

void GossipLearningApp::on_offline(NodeId self, Sim&) {
  online_age_sum_ -= age_[self];
}

double GossipLearningApp::metric(const Sim& sim) const {
  const TimeUs t = sim.now();
  if (t <= 0 || sim.online_count() == 0) return 0.0;
  const double n_star = static_cast<double>(t) /
                        static_cast<double>(sim.config().timing.transfer);
  const double mean_age = static_cast<double>(online_age_sum_) /
                          static_cast<double>(sim.online_count());
  return mean_age / n_star;
}

}  // namespace toka::apps
