// Chaotic asynchronous power iteration over the token account API
// (paper §2.4, Algorithm 3, §4.1.3).
//
// Each node holds one element x_i of the evolving eigenvector estimate and
// a buffer b[k] of the last value received from every in-neighbor k.
// On any message from k, the node stores b[k] and recomputes
// x_i = sum_k A[i][k] * b[k]; a message is useful iff it changed x_i.
// Following Lubachevsky–Mitra, A is the non-negative column-stochastic
// weighted neighborhood matrix (spectral radius 1), so x converges to the
// dominant eigenvector direction.
//
// Convergence metric: the angle between the global vector x and the true
// dominant eigenvector (computed centrally; see analysis::power_iteration).
#pragma once

#include <vector>

#include "net/weights.hpp"
#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace toka::apps {

/// Payload: the sender's current vector element.
struct WeightMsg {
  double x = 0.0;
};

class ChaoticIterationApp final : public sim::NodeLogic<WeightMsg> {
 public:
  using Sim = sim::Simulator<WeightMsg>;

  /// `weights` must outlive the app. Buffers start at 1.0 ("any positive
  /// value", Algorithm 3 line 1); x is initialized consistently.
  explicit ChaoticIterationApp(const net::InWeights& weights);

  WeightMsg create_message(NodeId self, Sim& sim) override;
  bool update_state(NodeId self, const sim::Arrival<WeightMsg>& msg,
                    Sim& sim) override;

  /// Current global estimate (one element per node).
  const std::vector<double>& state() const { return x_; }

  double value(NodeId node) const { return x_.at(node); }

  /// Angle (radians) between the current estimate and `reference`.
  double angle_to(const std::vector<double>& reference) const;

 private:
  /// x_i = sum over in-edges of weight * buffered value.
  double recompute(NodeId i) const;

  const net::InWeights* weights_;
  std::vector<double> x_;
  /// Buffered b values, flattened in the same CSR layout as weights_.
  std::vector<double> buffer_;
  std::vector<std::size_t> buffer_offset_;
};

}  // namespace toka::apps
