// Push gossip broadcast over the token account API (paper §2.3, §4.1.2).
//
// Fresh updates are injected at random online nodes in regular intervals
// (10 per proactive period); nodes store only the freshest update they have
// seen and push it on. A received update is useful iff it is strictly newer
// than the stored one.
//
// Performance metric (Eq. 7): the average lag, over online nodes, between
// the globally freshest injected update and the update stored at the node
// (in injection sequence numbers).
//
// Churn behaviour (§4.1.2): a node coming back online sends one free pull
// request to a random online neighbor; the neighbor answers with its
// stored update iff it can burn a token for it.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace toka::apps {

/// Payload: either a data update (timestamped) or a pull request.
struct GossipBody {
  std::int64_t ts = 0;  ///< injection sequence number; 0 = "no update yet"
  enum : std::uint8_t { kUpdate = 0, kPullRequest = 1 } kind = kUpdate;
};

class PushGossipApp final : public sim::NodeLogic<GossipBody> {
 public:
  using Sim = sim::Simulator<GossipBody>;

  /// `enable_rejoin_pull` toggles the §4.1.2 pull-on-rejoin protocol
  /// (disabled only by the ablation bench).
  explicit PushGossipApp(std::size_t node_count,
                         bool enable_rejoin_pull = true);

  GossipBody create_message(NodeId self, Sim& sim) override;
  bool update_state(NodeId self, const sim::Arrival<GossipBody>& msg,
                    Sim& sim) override;
  bool handle_special(NodeId self, const sim::Arrival<GossipBody>& msg,
                      Sim& sim) override;
  void on_online(NodeId self, Sim& sim) override;
  void on_offline(NodeId self, Sim& sim) override;

  /// Injects the next update at a uniformly random online node (no-op when
  /// everyone is offline, like a news source that cannot reach anyone).
  void inject(Sim& sim);

  /// Registers the repeating injection task (period: sim config).
  void start_injections(Sim& sim, TimeUs period);

  std::int64_t stored_ts(NodeId node) const { return ts_.at(node); }
  std::int64_t injected_count() const { return injected_; }

  /// Eq. 7: average lag in updates behind the freshest injected update,
  /// over online nodes.
  double metric(const Sim& sim) const;

 private:
  std::vector<std::int64_t> ts_;
  std::int64_t online_ts_sum_ = 0;
  std::int64_t injected_ = 0;
  bool enable_rejoin_pull_;
};

}  // namespace toka::apps
