// Push-pull gossip broadcast over the token account API.
//
// The paper chose plain push for simplicity and notes (§2.3) that the
// push-pull variant is superior on several metrics, with benefits mainly
// in the final phase of convergence — a phase its continuous-injection
// setup never reaches. This extension implements the variant so that both
// claims can be checked (see bench/extension_push_pull):
//
//   * on receiving an update OLDER than the stored one, the receiver
//     replies with its own fresher update — if it can burn a token for
//     the reply (pull-style correction, token-governed);
//   * everything else is identical to PushGossipApp, including injections
//     and the rejoin pull protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/types.hpp"

namespace toka::apps {

struct PushPullBody {
  std::int64_t ts = 0;
  enum : std::uint8_t {
    kUpdate = 0,
    kPullRequest = 1,
    kPullReply = 2,  ///< correction reply; does not trigger further pulls
  } kind = kUpdate;
};

class PushPullGossipApp final : public sim::NodeLogic<PushPullBody> {
 public:
  using Sim = sim::Simulator<PushPullBody>;

  explicit PushPullGossipApp(std::size_t node_count);

  PushPullBody create_message(NodeId self, Sim& sim) override;
  bool update_state(NodeId self, const sim::Arrival<PushPullBody>& msg,
                    Sim& sim) override;
  bool handle_special(NodeId self, const sim::Arrival<PushPullBody>& msg,
                      Sim& sim) override;
  void on_online(NodeId self, Sim& sim) override;
  void on_offline(NodeId self, Sim& sim) override;

  void inject(Sim& sim);
  void start_injections(Sim& sim, TimeUs period);

  std::int64_t stored_ts(NodeId node) const { return ts_.at(node); }
  std::int64_t injected_count() const { return injected_; }
  std::uint64_t pull_corrections() const { return pull_corrections_; }

  /// Average lag over online nodes (same metric as push gossip, Eq. 7).
  double metric(const Sim& sim) const;

  /// Fraction of online nodes storing the globally freshest update —
  /// the single-shot spreading metric for the final-phase comparison.
  double informed_fraction(const Sim& sim) const;

 private:
  bool adopt(NodeId self, std::int64_t ts);

  std::vector<std::int64_t> ts_;
  std::int64_t online_ts_sum_ = 0;
  std::int64_t injected_ = 0;
  std::uint64_t pull_corrections_ = 0;
};

}  // namespace toka::apps
