// Adaptive overload control: the paper's bounded-token-budget idea applied
// to the server itself.
//
// AdmissionBucket grants the server a budget of data-op admissions per
// fixed interval — exactly a token account with interval-sized refills —
// and the budget adapts to measured service time: an interval can admit at
// most the work that fits into `utilization` of its wall time, estimated
// from an EWMA of per-request service time. Requests beyond the budget are
// shed with a typed kOverloaded error carrying a retry-after hint (the
// time to the next interval boundary), instead of queueing unboundedly.
//
// Setting min_budget == max_budget pins the budget (no adaptivity), which
// is what deterministic tests use. The `now` fed to try_admit comes from
// the table's CoarseClock, so tests control interval rollover explicitly.
//
// SpaceSaving is the classic top-k heavy-hitter sketch (Metwally et al.):
// k slots of (item, count); a miss evicts the minimum slot and inherits
// its count (so a true heavy hitter's count is never undercounted by more
// than the evicted minimum). It is NOT thread-safe — each table shard owns
// one and updates it under the shard lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace toka::obs {

struct AdmissionConfig {
  bool enabled = false;
  /// Budget interval; also the granularity of retry-after hints.
  TimeUs interval_us = 10'000;
  /// Budget clamp. min == max pins the budget for deterministic tests.
  std::int64_t min_budget = 32;
  std::int64_t max_budget = 1'000'000;
  /// Fraction of interval wall time the adaptive budget may fill with
  /// estimated service time.
  double utilization = 0.75;
};

/// Per-server admission token bucket. All operations are lock-free; the
/// interval-rollover race (a late admit landing on a freshly reset
/// interval) can over- or under-admit by a handful of requests, which is
/// fine for an overload valve.
class AdmissionBucket {
 public:
  explicit AdmissionBucket(AdmissionConfig config = {});

  bool enabled() const { return cfg_.enabled; }
  const AdmissionConfig& config() const { return cfg_; }

  /// Consumes one unit of the current interval's budget. False = shed.
  bool try_admit(TimeUs now);

  /// Retry-after hint for a shed request: time to the next interval.
  TimeUs retry_after_us(TimeUs now) const;

  /// Feeds one measured per-request service time into the EWMA the
  /// adaptive budget is derived from.
  void record_service_time_us(double us);

  std::int64_t budget() const { return budget_.load(std::memory_order_relaxed); }
  std::int64_t used() const { return used_.load(std::memory_order_relaxed); }
  double ewma_service_us() const;

 private:
  /// The budget a fresh interval gets, given the current EWMA.
  std::int64_t compute_budget() const;

  AdmissionConfig cfg_;
  std::atomic<std::int64_t> interval_{-1};  ///< now / interval_us
  std::atomic<std::int64_t> used_{0};
  std::atomic<std::int64_t> budget_;
  std::atomic<std::uint64_t> ewma_bits_{0};  ///< double bit pattern; 0 = none
};

/// Space-saving top-k sketch over 64-bit item ids. Not thread-safe.
class SpaceSaving {
 public:
  explicit SpaceSaving(std::size_t k = 8) : slots_(), k_(k) {
    slots_.reserve(k);
  }

  struct HeavyHitter {
    std::uint64_t item = 0;
    std::uint64_t count = 0;
  };

  void record(std::uint64_t item);
  /// Tracked items, descending by count.
  std::vector<HeavyHitter> top() const;
  /// Total records fed in (the share denominator).
  std::uint64_t total() const { return total_; }

 private:
  std::vector<HeavyHitter> slots_;
  std::size_t k_;
  std::uint64_t total_ = 0;
};

}  // namespace toka::obs
