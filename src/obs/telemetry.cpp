#include "obs/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <thread>

namespace toka::obs {

namespace {

std::size_t thread_stripe() {
  // One stripe per thread, assigned round-robin on first use. Collisions
  // between threads are harmless (the stripe is still an atomic).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

/// Formats a metric value: integers without a decimal point (counter
/// readings stay exact), everything else with enough digits to round-trip.
std::string format_value(double v) {
  if (std::isfinite(v) && v >= 0 && v < 9.007199254740992e15 &&
      v == std::floor(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

void Counter::add(std::uint64_t n) {
  stripes_[thread_stripe() % kStripes].v.fetch_add(n,
                                                   std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) total += s.v.load(std::memory_order_relaxed);
  return total;
}

std::size_t Histogram::bucket_index(std::int64_t v) {
  if (v < 16) return v < 0 ? 0 : static_cast<std::size_t>(v);
  const int g = std::bit_width(static_cast<std::uint64_t>(v));  // >= 5
  const std::size_t sub =
      static_cast<std::size_t>(static_cast<std::uint64_t>(v) >> (g - 5)) & 15;
  return 16 + static_cast<std::size_t>(g - 5) * kSubBuckets + sub;
}

double Histogram::bucket_mid(std::size_t i) {
  if (i < 16) return static_cast<double>(i);
  const std::size_t b = i - 16;
  const int g = static_cast<int>(b / kSubBuckets) + 5;
  const std::uint64_t sub = b % kSubBuckets;
  const std::uint64_t width = std::uint64_t{1} << (g - 5);
  const std::uint64_t lo = (std::uint64_t{1} << (g - 1)) + sub * width;
  return static_cast<double>(lo) + static_cast<double>(width) / 2.0;
}

double Histogram::bucket_upper(std::size_t i) {
  if (i < 16) return static_cast<double>(i);
  const std::size_t b = i - 16;
  const int g = static_cast<int>(b / kSubBuckets) + 5;
  const std::uint64_t sub = b % kSubBuckets;
  const std::uint64_t width = std::uint64_t{1} << (g - 5);
  const std::uint64_t lo = (std::uint64_t{1} << (g - 1)) + sub * width;
  return static_cast<double>(lo + width - 1);
}

void Histogram::observe(double v) {
  const std::int64_t x =
      v <= 0 ? 0 : static_cast<std::int64_t>(std::llround(v));
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (x > cur &&
         !max_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  // Copy the buckets once (relaxed reads; a snapshot taken concurrently
  // with observes is weakly consistent, which is all a scrape needs).
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  HistogramSnapshot snap;
  snap.count = total;
  snap.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  snap.max = static_cast<double>(max_.load(std::memory_order_relaxed));
  if (total == 0) return snap;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] > 0)
      snap.buckets.push_back(
          HistogramBucket{static_cast<std::uint32_t>(i), counts[i]});
  }

  const auto quantile = [&](double q) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank && counts[i] > 0) return bucket_mid(i);
    }
    return snap.max;
  };
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p99 = quantile(0.99);
  return snap;
}

/// Quantile over a sparse (ascending-index) bucket list: the same
/// first-bucket-at-rank rule Histogram::snapshot uses, so a merged
/// quantile equals what one histogram holding all the samples would say.
static double sparse_quantile(const std::vector<HistogramBucket>& buckets,
                              std::uint64_t total, double q, double fallback) {
  const std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (const HistogramBucket& b : buckets) {
    seen += b.count;
    if (seen >= rank) return Histogram::bucket_mid(b.index);
  }
  return fallback;
}

std::vector<Metric> merge_snapshots(
    const std::vector<std::vector<Metric>>& nodes) {
  std::vector<Metric> out;
  // Merged-histogram scratch: dense counts per bucket index, rebuilt into
  // the sparse form once per metric at the end.
  struct HistAcc {
    std::vector<std::uint64_t> counts;
    bool complete = true;  ///< every contributing entry carried buckets
  };
  std::vector<HistAcc> accs;
  auto slot_of = [&](const std::string& name, Metric::Kind kind) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].name == name) return i;
    }
    Metric m;
    m.name = name;
    m.kind = kind;
    out.push_back(std::move(m));
    accs.emplace_back();
    return out.size() - 1;
  };
  for (const std::vector<Metric>& node : nodes) {
    for (const Metric& m : node) {
      const std::size_t i = slot_of(m.name, m.kind);
      Metric& merged = out[i];
      if (m.kind != Metric::Kind::kHistogram) {
        merged.value += m.value;  // counters and gauges: cluster totals
        continue;
      }
      merged.value += m.value;
      merged.sum += m.sum;
      merged.max = std::max(merged.max, m.max);
      HistAcc& acc = accs[i];
      if (m.buckets.empty() && m.value > 0) {
        // A bucketless histogram entry (an old peer): its quantiles can't
        // be re-ranked, so the merged quantiles degrade to max-over-nodes.
        acc.complete = false;
        merged.p50 = std::max(merged.p50, m.p50);
        merged.p90 = std::max(merged.p90, m.p90);
        merged.p99 = std::max(merged.p99, m.p99);
        continue;
      }
      if (acc.counts.empty()) acc.counts.resize(Histogram::kBuckets, 0);
      for (const HistogramBucket& b : m.buckets) {
        if (b.index < Histogram::kBuckets) acc.counts[b.index] += b.count;
      }
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    Metric& merged = out[i];
    if (merged.kind != Metric::Kind::kHistogram) continue;
    HistAcc& acc = accs[i];
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < acc.counts.size(); ++b) {
      if (acc.counts[b] > 0) {
        merged.buckets.push_back(
            HistogramBucket{static_cast<std::uint32_t>(b), acc.counts[b]});
        total += acc.counts[b];
      }
    }
    if (total > 0 && acc.complete) {
      merged.p50 = sparse_quantile(merged.buckets, total, 0.50, merged.max);
      merged.p90 = sparse_quantile(merged.buckets, total, 0.90, merged.max);
      merged.p99 = sparse_quantile(merged.buckets, total, 0.99, merged.max);
    }
  }
  return out;
}

Registry::Entry& Registry::upsert(const std::string& name, Metric::Kind kind) {
  for (auto& e : entries_) {
    if (e->name == name) {
      e->kind = kind;
      return *e;
    }
  }
  entries_.push_back(std::make_unique<Entry>());
  entries_.back()->name = name;
  entries_.back()->kind = kind;
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  Entry& e = upsert(name, Metric::Kind::kCounter);
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
    e.fn = nullptr;
  }
  return *e.counter;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  Entry& e = upsert(name, Metric::Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

void Registry::gauge(const std::string& name, std::function<double()> fn) {
  std::lock_guard lock(mu_);
  Entry& e = upsert(name, Metric::Kind::kGauge);
  e.counter.reset();
  e.histogram.reset();
  e.fn = std::move(fn);
}

void Registry::counter_fn(const std::string& name, std::function<double()> fn) {
  std::lock_guard lock(mu_);
  Entry& e = upsert(name, Metric::Kind::kCounter);
  e.counter.reset();
  e.histogram.reset();
  e.fn = std::move(fn);
}

void Registry::remove(const std::string& name) {
  std::lock_guard lock(mu_);
  std::erase_if(entries_,
                [&](const std::unique_ptr<Entry>& e) { return e->name == name; });
}

std::vector<Metric> Registry::collect() const {
  std::lock_guard lock(mu_);
  std::vector<Metric> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    Metric m;
    m.name = e->name;
    m.kind = e->kind;
    if (e->histogram) {
      HistogramSnapshot snap = e->histogram->snapshot();
      m.value = static_cast<double>(snap.count);
      m.p50 = snap.p50;
      m.p90 = snap.p90;
      m.p99 = snap.p99;
      m.max = snap.max;
      m.sum = snap.sum;
      m.buckets = std::move(snap.buckets);
    } else if (e->counter) {
      m.value = static_cast<double>(e->counter->value());
    } else if (e->fn) {
      m.value = e->fn();
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::string Registry::render_prometheus() const {
  const std::vector<Metric> metrics = collect();
  std::string out;
  for (const Metric& m : metrics) {
    switch (m.kind) {
      case Metric::Kind::kCounter:
        out += "# TYPE " + m.name + " counter\n";
        out += m.name + " " + format_value(m.value) + "\n";
        break;
      case Metric::Kind::kGauge:
        out += "# TYPE " + m.name + " gauge\n";
        out += m.name + " " + format_value(m.value) + "\n";
        break;
      case Metric::Kind::kHistogram: {
        // Native histogram exposition: cumulative le-buckets over the
        // occupied log-linear buckets. Mergeable server-side, unlike the
        // summary-with-quantiles form this replaced.
        out += "# TYPE " + m.name + " histogram\n";
        std::uint64_t cumulative = 0;
        for (const HistogramBucket& b : m.buckets) {
          cumulative += b.count;
          out += m.name + "_bucket{le=\"" +
                 format_value(Histogram::bucket_upper(b.index)) + "\"} " +
                 format_value(static_cast<double>(cumulative)) + "\n";
        }
        out += m.name + "_bucket{le=\"+Inf\"} " + format_value(m.value) + "\n";
        out += m.name + "_sum " + format_value(m.sum) + "\n";
        out += m.name + "_count " + format_value(m.value) + "\n";
        out += "# TYPE " + m.name + "_max gauge\n";
        out += m.name + "_max " + format_value(m.max) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace toka::obs
