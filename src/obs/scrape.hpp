// Minimal Prometheus scrape endpoint: a single-threaded HTTP/1.0 server
// that answers GETs with the registry's text exposition — plus, when
// built with a Tracer, "GET /traces" with the flight recorder's JSON
// snapshot. One connection at a time, read-render-write-close — a scrape
// target, not a web server. Binds 127.0.0.1 (port 0 picks an ephemeral
// port; read it back with port()).
//
// Every accepted connection gets a read AND a write deadline
// (kConnTimeoutMs via SO_RCVTIMEO/SO_SNDTIMEO): a client that connects
// and then goes silent — or stops reading the response — times out and is
// closed, instead of wedging the serve loop forever and starving every
// later scrape.
#pragma once

#include <cstdint>
#include <thread>

namespace toka::obs {

class Registry;
class Tracer;

class ScrapeServer {
 public:
  /// Per-connection read/write deadline. A scrape is one short request and
  /// one bounded response on a loopback or LAN hop; anything slower than
  /// this is a stuck peer, not a slow one.
  static constexpr long kConnTimeoutMs = 2000;

  /// Starts listening and serving immediately; throws util::IoError if the
  /// socket can't be bound. `registry` must outlive the server.
  explicit ScrapeServer(const Registry& registry, std::uint16_t port = 0);

  /// Same, additionally answering "GET /traces" from `tracer` (which must
  /// outlive the server; nullptr behaves like the two-arg constructor).
  ScrapeServer(const Registry& registry, const Tracer* tracer,
               std::uint16_t port);

  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  const Registry* registry_;
  const Tracer* tracer_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace toka::obs
