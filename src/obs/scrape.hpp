// Minimal Prometheus scrape endpoint: a single-threaded HTTP/1.0 server
// that answers every GET with the registry's text exposition. One
// connection at a time, read-render-write-close — a scrape target, not a
// web server. Binds 127.0.0.1 (port 0 picks an ephemeral port; read it
// back with port()).
#pragma once

#include <cstdint>
#include <thread>

namespace toka::obs {

class Registry;

class ScrapeServer {
 public:
  /// Starts listening and serving immediately; throws util::IoError if the
  /// socket can't be bound. `registry` must outlive the server.
  explicit ScrapeServer(const Registry& registry, std::uint16_t port = 0);
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

 private:
  void serve_loop();

  const Registry* registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace toka::obs
