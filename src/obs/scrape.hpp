// Minimal Prometheus scrape endpoint: a single-threaded HTTP/1.1 server
// that answers GETs with the registry's text exposition — plus, when
// built with a Tracer, "GET /traces" with the flight recorder's JSON
// snapshot, and "GET /healthz" with a liveness document (a process-wide
// {"ok":true} by default; set_health injects the real probe — ring epoch,
// worker liveness — from the layer that knows it). One connection at a
// time, but each connection may carry many requests: HTTP/1.1 peers get
// keep-alive by default (pipelined requests included), HTTP/1.0 peers get
// one-shot close unless they ask to keep the connection, and every
// response states its Content-Length and Connection verdict explicitly.
// A scrape target, not a web server. Binds 127.0.0.1 (port 0 picks an
// ephemeral port; read it back with port()).
//
// Every accepted connection gets a read AND a write deadline
// (kConnTimeoutMs via SO_RCVTIMEO/SO_SNDTIMEO): a client that connects
// and then goes silent — or stops reading the response — times out and is
// closed, instead of wedging the serve loop forever and starving every
// later scrape. The deadline also bounds how long one keep-alive client
// can hold the serve loop between requests.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace toka::obs {

class Registry;
class Tracer;

class ScrapeServer {
 public:
  /// Per-connection read/write deadline. A scrape is one short request and
  /// one bounded response on a loopback or LAN hop; anything slower than
  /// this is a stuck peer, not a slow one.
  static constexpr long kConnTimeoutMs = 2000;

  /// Requests served on one keep-alive connection before the server closes
  /// it anyway — an upper bound on how long one client can monopolize the
  /// single serve loop.
  static constexpr std::size_t kMaxRequestsPerConn = 1000;

  /// Starts listening and serving immediately; throws util::IoError if the
  /// socket can't be bound. `registry` must outlive the server.
  explicit ScrapeServer(const Registry& registry, std::uint16_t port = 0);

  /// Same, additionally answering "GET /traces" from `tracer` (which must
  /// outlive the server; nullptr behaves like the two-arg constructor).
  ScrapeServer(const Registry& registry, const Tracer* tracer,
               std::uint16_t port);

  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The bound port (the ephemeral one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Installs the /healthz document producer (a JSON object; the default
  /// answers {"ok":true}). Called from the serve thread on every probe;
  /// must be fast and must not throw. Safe to call while serving.
  void set_health(std::function<std::string()> health);

 private:
  void serve_loop();
  std::string health_body();

  const Registry* registry_;
  const Tracer* tracer_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::mutex health_mu_;
  std::function<std::string()> health_;  ///< guarded by health_mu_
  std::thread thread_;
};

}  // namespace toka::obs
