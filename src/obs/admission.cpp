#include "obs/admission.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace toka::obs {

namespace {
constexpr double kEwmaAlpha = 0.05;

double bits_to_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t double_to_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}
}  // namespace

AdmissionBucket::AdmissionBucket(AdmissionConfig config) : cfg_(config) {
  if (cfg_.interval_us <= 0) cfg_.interval_us = 10'000;
  if (cfg_.min_budget < 1) cfg_.min_budget = 1;
  if (cfg_.max_budget < cfg_.min_budget) cfg_.max_budget = cfg_.min_budget;
  budget_.store(cfg_.max_budget, std::memory_order_relaxed);
}

std::int64_t AdmissionBucket::compute_budget() const {
  const std::uint64_t bits = ewma_bits_.load(std::memory_order_relaxed);
  if (bits == 0) return cfg_.max_budget;  // no samples yet: open wide
  const double service_us = std::max(bits_to_double(bits), 0.01);
  const double fit = static_cast<double>(cfg_.interval_us) * cfg_.utilization /
                     service_us;
  const auto raw = static_cast<std::int64_t>(fit);
  return std::clamp(raw, cfg_.min_budget, cfg_.max_budget);
}

bool AdmissionBucket::try_admit(TimeUs now) {
  if (!cfg_.enabled) return true;
  const std::int64_t idx = now / cfg_.interval_us;
  std::int64_t cur = interval_.load(std::memory_order_relaxed);
  if (idx > cur &&
      interval_.compare_exchange_strong(cur, idx, std::memory_order_relaxed)) {
    // New interval: recompute the budget from the EWMA and refill. An
    // admit racing this reset may charge the old interval — a few requests
    // of slack either way, acceptable for a valve.
    budget_.store(compute_budget(), std::memory_order_relaxed);
    used_.store(0, std::memory_order_relaxed);
  }
  const std::int64_t taken = used_.fetch_add(1, std::memory_order_relaxed) + 1;
  return taken <= budget_.load(std::memory_order_relaxed);
}

TimeUs AdmissionBucket::retry_after_us(TimeUs now) const {
  const std::int64_t idx = now / cfg_.interval_us;
  const TimeUs next = (idx + 1) * cfg_.interval_us;
  return std::max<TimeUs>(next - now, 1);
}

void AdmissionBucket::record_service_time_us(double us) {
  if (us < 0) return;
  std::uint64_t cur = ewma_bits_.load(std::memory_order_relaxed);
  const double prev = cur == 0 ? us : bits_to_double(cur);
  const double next = prev * (1.0 - kEwmaAlpha) + us * kEwmaAlpha;
  // Single CAS; on contention the losing sample is dropped (the EWMA only
  // needs a representative stream, not every sample).
  ewma_bits_.compare_exchange_strong(cur, double_to_bits(next),
                                     std::memory_order_relaxed);
}

double AdmissionBucket::ewma_service_us() const {
  const std::uint64_t bits = ewma_bits_.load(std::memory_order_relaxed);
  return bits == 0 ? 0.0 : bits_to_double(bits);
}

void SpaceSaving::record(std::uint64_t item) {
  ++total_;
  for (HeavyHitter& s : slots_) {
    if (s.item == item) {
      ++s.count;
      return;
    }
  }
  if (slots_.size() < k_) {
    slots_.push_back({item, 1});
    return;
  }
  // Evict the minimum slot; the newcomer inherits its count (space-saving
  // overestimates, never underestimates, a heavy hitter).
  auto min_it = slots_.begin();
  for (auto it = slots_.begin() + 1; it != slots_.end(); ++it)
    if (it->count < min_it->count) min_it = it;
  min_it->item = item;
  ++min_it->count;
}

std::vector<SpaceSaving::HeavyHitter> SpaceSaving::top() const {
  std::vector<HeavyHitter> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.count > b.count;
            });
  return out;
}

}  // namespace toka::obs
