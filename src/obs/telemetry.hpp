// Telemetry primitives for the tokend/tokad service: cheap enough to sit
// on the request hot path, exported two ways (the protocol v2 kStats
// message and the Prometheus-exposition scrape endpoint).
//
// Three metric kinds:
//
//   - Counter: a monotonically increasing count, striped over cache-line-
//     padded atomics so concurrent request threads never contend on one
//     line. Reads sum the stripes (weakly consistent, like every counter
//     snapshot here).
//   - Gauge / counter_fn: a read callback evaluated at collection time —
//     the way existing atomics (server served/errored counters, table
//     stats, the cluster map epoch) are exported without being moved.
//   - Histogram: log-linear buckets (16 sub-buckets per power of two, so
//     every recorded value lands within ~6% of its bucket), with
//     p50/p90/p99/max extracted at collection time. Lock-free relaxed
//     atomics per bucket; built for microsecond latencies.
//
// The Registry owns Counters and Histograms (node-stable: references stay
// valid for the registry's lifetime) and holds the gauge callbacks. A
// component registers its metrics under stable names at construction and
// removes them at destruction (remove()), so a scrape can never call into
// a dead object. Registration of an existing name returns the existing
// metric (counter/histogram) or replaces the callback (gauge/counter_fn):
// latest registration wins.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace toka::obs {

/// Striped monotonic counter. add() touches one stripe (chosen per
/// thread); value() sums all stripes.
class Counter {
 public:
  void add(std::uint64_t n = 1);
  void increment() { add(1); }
  std::uint64_t value() const;

 private:
  static constexpr std::size_t kStripes = 8;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// One occupied log-linear bucket: (bucket index, sample count). Snapshots
/// carry only occupied buckets — a latency histogram typically lands in a
/// few dozen of the 960 — so the sparse form is what travels in kStats.
struct HistogramBucket {
  std::uint32_t index = 0;
  std::uint64_t count = 0;
  friend bool operator==(const HistogramBucket&,
                         const HistogramBucket&) = default;
};

/// Collected view of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  double max = 0;
  /// Occupied buckets in ascending index order. Raw material for merging:
  /// quantiles recomputed from any union of snapshots keep the same 1/16
  /// relative-error bound as a single histogram's.
  std::vector<HistogramBucket> buckets;
};

/// Log-linear histogram over non-negative values (microseconds on every
/// current use). Values < 16 get exact buckets; above that, 16 sub-buckets
/// per power of two, so the quantile's relative error is bounded by 1/16.
class Histogram {
 public:
  // 16 exact buckets + 16 per remaining power-of-two group of an int64.
  static constexpr std::size_t kSubBuckets = 16;
  static constexpr std::size_t kBuckets = 16 + 59 * kSubBuckets;

  void observe(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

  /// The bucket a value lands in; inverse of the range accessors below.
  static std::size_t bucket_index(std::int64_t v);
  /// Midpoint of the value range bucket i covers (the quantile estimate).
  static double bucket_mid(std::size_t i);
  /// Largest value bucket i covers (the Prometheus `le` boundary).
  static double bucket_upper(std::size_t i);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};   ///< whole units (values are rounded)
  std::atomic<std::int64_t> max_{0};
};

/// Collected view of one registered metric; also the shape the kStats
/// protocol message carries (protocol::StatsEntry mirrors it).
struct Metric {
  enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0;  ///< counter/gauge reading; histogram sample count
  double p50 = 0, p90 = 0, p99 = 0, max = 0;  ///< histogram only
  double sum = 0;                             ///< histogram only
  /// Histogram only: occupied log-linear buckets, ascending by index.
  std::vector<HistogramBucket> buckets;
};

/// Merges N nodes' collected snapshots into one cluster-wide view, keyed
/// by metric name (first-appearance order). Counters and gauges sum —
/// gauges here are cluster totals (accounts, admission budget); a gauge
/// that is really per-node identity (a map epoch) is meaningful per node,
/// not summed, so read those from the per-node snapshots instead.
/// Histograms merge bucket-wise and recompute p50/p90/p99 from the merged
/// buckets, preserving the single-histogram ≤1/16 relative-error bound
/// (bucket boundaries are global constants, so a union of bucketed
/// snapshots is exactly the histogram a single node would have built from
/// all samples). An entry arriving without buckets (an old peer) degrades
/// to max-over-nodes per quantile — an upper bound, never an invented
/// midpoint.
std::vector<Metric> merge_snapshots(
    const std::vector<std::vector<Metric>>& nodes);

class Registry {
 public:
  /// The owned counter named `name` (created on first use).
  Counter& counter(const std::string& name);
  /// The owned histogram named `name` (created on first use).
  Histogram& histogram(const std::string& name);
  /// Registers `fn` as a gauge (instantaneous value, may go down).
  void gauge(const std::string& name, std::function<double()> fn);
  /// Registers `fn` as a counter read externally (an existing atomic or a
  /// stats-sweep field). Rendered with counter semantics.
  void counter_fn(const std::string& name, std::function<double()> fn);
  /// Removes the metric named `name` (no-op if absent). Components call
  /// this from their destructors for every callback they registered, so a
  /// later scrape cannot call into freed state.
  void remove(const std::string& name);

  /// Evaluates every metric (gauge callbacks run here) in registration
  /// order.
  std::vector<Metric> collect() const;

  /// Prometheus text exposition: counters and gauges as single samples,
  /// histograms as native `le`-bucket histograms (cumulative _bucket
  /// series + _sum + _count, so server-side aggregation can merge nodes),
  /// plus a _max gauge (the one reading buckets cannot reconstruct).
  std::string render_prometheus() const;

 private:
  struct Entry {
    std::string name;
    Metric::Kind kind = Metric::Kind::kCounter;
    std::unique_ptr<Counter> counter;      ///< owned-counter entries
    std::unique_ptr<Histogram> histogram;  ///< histogram entries
    std::function<double()> fn;            ///< gauge / counter_fn entries
  };

  Entry& upsert(const std::string& name, Metric::Kind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace toka::obs
