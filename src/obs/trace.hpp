// Flight-recorder request tracing: allocation-free per-request spans in a
// small set of ring buffers, cheap enough to leave on in production.
//
// A span is one stage of one request's life (client issue, frame decode,
// shard-queue wait, shard execute, reply cork, redirect, shed) stamped
// with the request's trace id, the key/namespace it touched and — for the
// execute stage — the §3.4 decision taken (granted from the bank, granted
// from a fresh token, refund, shed, denied, error).
//
// Recording policy (the flight-recorder part):
//   - requests in the sampled 1-in-N set record every stage;
//   - sheds, denials and errors always record, sampled or not;
//   - any span at/above the slow threshold always records.
// Everything else costs one branch and records nothing.
//
// Rings are fixed-size and overwrite oldest-first; each recording thread
// is pinned round-robin to one ring, and each ring is guarded by its own
// mutex — uncontended in steady state (one writer per ring, snapshots are
// rare), which keeps the recorder TSan-clean without a lock-free reclaim
// scheme. A snapshot locks rings one at a time, so it never stops the
// world.
//
// When built with a Registry, the tracer also feeds per-stage latency
// histograms (queue-wait / execute / cork) from every recorded span, so
// aggregate stage p99s ride the existing scrape/kStats pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace toka::obs {

class Registry;
class Counter;
class Histogram;

/// Which stage of the request pipeline a span covers.
enum class Stage : std::uint8_t {
  kClient = 0,     ///< client: issue → response decoded
  kDecode = 1,     ///< server: frame arrival → request decoded/submitted
  kQueueWait = 2,  ///< shard engine: submit → worker pop
  kExecute = 3,    ///< shard engine: worker pop → table op applied
  kCork = 4,       ///< server: completion → reply handed to the transport
  kRedirect = 5,   ///< cluster: frame answered with a redirect
  kShed = 6,       ///< server: request refused by admission/queue limits
  kHandoff = 7,    ///< cluster: account state moved node-to-node
  kPromote = 8,    ///< cluster: failover map adoption (epoch bump)
  kReplicate = 9,  ///< cluster: delta-stream frame primary → follower
};
inline constexpr std::uint8_t kStageCount = 10;

/// The §3.4 outcome a span carries (execute/shed stages; kNone elsewhere).
enum class Decision : std::uint8_t {
  kNone = 0,
  kBank = 1,    ///< granted entirely from banked tokens
  kFresh = 2,   ///< grant needed tokens minted by this settle
  kRefund = 3,  ///< refund applied
  kShed = 4,    ///< refused: admission budget or shard queue full
  kDenied = 5,  ///< acquire served but zero tokens granted
  kError = 6,   ///< typed error (bad body, unknown namespace, ...)
};
inline constexpr std::uint8_t kDecisionCount = 7;

const char* to_string(Stage stage);
const char* to_string(Decision decision);

/// Span flag bits (mirrored onto the kTraces wire and /traces JSON).
inline constexpr std::uint8_t kSpanSampled = 0x01;  ///< in the 1-in-N set
inline constexpr std::uint8_t kSpanForced = 0x02;   ///< shed/error/slow

/// One recorded span. POD; rings store these by value. `ns` is the
/// service-layer NamespaceId's underlying type (obs sits below the
/// service layer and cannot name it).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t key = 0;
  std::int64_t start_us = 0;  ///< steady-clock microseconds
  std::int64_t dur_us = 0;
  std::uint32_t ns = 0;
  Stage stage = Stage::kClient;
  Decision decision = Decision::kNone;
  std::uint8_t flags = 0;
};

struct TracerOptions {
  /// Ring count; recording threads are assigned round-robin. More rings
  /// than concurrent recorders wastes memory, fewer adds (rare) contention.
  std::size_t rings = 8;
  /// Spans kept per ring before oldest-first overwrite.
  std::size_t ring_capacity = 2048;
  /// Sample 1 request in N end to end (0 disables sampling entirely;
  /// forced records still happen).
  std::uint64_t sample_every = 128;
  /// Spans at/above this duration record even when unsampled.
  std::int64_t slow_threshold_us = 10'000;
  /// Optional: per-stage histograms + recorder counters land here.
  Registry* registry = nullptr;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions opts = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Monotonic, never-zero trace id source. Ids are unique across every
  /// tracer in the process (each tracer mints from its own slice of the
  /// id space), so a cluster of per-node tracers can never hand two
  /// unrelated requests the same id.
  std::uint64_t next_trace_id() {
    return ids_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True when the next request this thread issues should join the
  /// sampled set (thread-local 1-in-N countdown; first call samples, so
  /// short tests see traces).
  bool sample_next();

  /// Steady-clock microseconds — the timebase every span uses.
  static std::int64_t now_us();

  /// Records one span if the policy says so (sampled, or a shed/denied/
  /// error decision, or dur >= slow threshold). Returns whether the span
  /// was kept. Safe from any thread; never allocates.
  bool record(Stage stage, Decision decision, std::uint64_t trace_id,
              std::uint64_t key, std::uint32_t ns, std::int64_t start_us,
              std::int64_t dur_us, bool sampled);

  /// Copies out the newest spans (all rings merged, oldest first),
  /// capped at `max_spans` (0 = everything currently held).
  std::vector<SpanRecord> snapshot(std::size_t max_spans = 0) const;

  /// The /traces JSON document: {"spans":[{...}, ...]}.
  std::string render_json(std::size_t max_spans = 0) const;

  /// Total spans kept since construction (overwritten ones included).
  std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  const TracerOptions& options() const { return opts_; }

 private:
  struct alignas(64) Ring {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;  ///< sized ring_capacity, fixed
    std::uint64_t next = 0;         ///< total writes; next % cap = slot
  };

  Ring& ring_for_thread();
  void register_metrics();

  TracerOptions opts_;
  std::vector<Ring> rings_;
  std::atomic<std::uint64_t> ids_{1};
  std::atomic<std::size_t> ring_rr_{0};
  std::atomic<std::uint64_t> recorded_{0};
  Counter* forced_total_ = nullptr;   ///< registry-owned, optional
  Histogram* stage_hist_[kStageCount] = {};
};

}  // namespace toka::obs
