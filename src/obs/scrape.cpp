#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace toka::obs {

namespace {

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL);
    if (put <= 0) return false;
    data += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

ScrapeServer::ScrapeServer(const Registry& registry, std::uint16_t port)
    : registry_(&registry) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw util::IoError("scrape: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError(std::string("scrape: bind/listen failed: ") +
                        std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

ScrapeServer::~ScrapeServer() {
  // shutdown() wakes the blocked accept(); the loop then sees the failure
  // and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void ScrapeServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;  // listener shut down (or unrecoverable error)
    // Drain the request line + headers; we answer every request the same
    // way, so only the terminating blank line matters.
    char buf[1024];
    std::string req;
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
      const ssize_t got = ::recv(conn, buf, sizeof buf, 0);
      if (got <= 0) break;
      req.append(buf, static_cast<std::size_t>(got));
    }
    const std::string body = registry_->render_prometheus();
    const std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    send_all(conn, resp.data(), resp.size());
    ::close(conn);
  }
}

}  // namespace toka::obs
