#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace toka::obs {

namespace {

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL);
    if (put <= 0) return false;
    data += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// True when the request line asks for `path` (exactly, or with a query
/// string). The request buffer always starts with the request line.
bool requests_path(const std::string& req, const char* path) {
  const std::string prefix = std::string("GET ") + path;
  if (req.compare(0, prefix.size(), prefix) != 0) return false;
  const char next = req.size() > prefix.size() ? req[prefix.size()] : '\0';
  return next == ' ' || next == '?' || next == '\0';
}

}  // namespace

ScrapeServer::ScrapeServer(const Registry& registry, std::uint16_t port)
    : ScrapeServer(registry, nullptr, port) {}

ScrapeServer::ScrapeServer(const Registry& registry, const Tracer* tracer,
                           std::uint16_t port)
    : registry_(&registry), tracer_(tracer) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw util::IoError("scrape: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError(std::string("scrape: bind/listen failed: ") +
                        std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

ScrapeServer::~ScrapeServer() {
  // shutdown() wakes the blocked accept(); the loop then sees the failure
  // and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void ScrapeServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;  // listener shut down (or unrecoverable error)
    // Deadline both directions: recv() returns EAGAIN after the timeout on
    // a connected-but-silent client, and send() after one that stopped
    // reading — either way the loop moves on to the next scrape instead of
    // blocking forever on this one.
    timeval tv{};
    tv.tv_sec = kConnTimeoutMs / 1000;
    tv.tv_usec = (kConnTimeoutMs % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    // Drain the request line + headers; only the path and the terminating
    // blank line matter.
    char buf[1024];
    std::string req;
    bool timed_out = false;
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
      const ssize_t got = ::recv(conn, buf, sizeof buf, 0);
      if (got <= 0) {
        timed_out = got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
        break;
      }
      req.append(buf, static_cast<std::size_t>(got));
    }
    if (timed_out || req.empty()) {
      ::close(conn);  // silent or dead client: answer nothing
      continue;
    }
    std::string body;
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (tracer_ != nullptr && requests_path(req, "/traces")) {
      body = tracer_->render_json();
      content_type = "application/json";
    } else {
      body = registry_->render_prometheus();
    }
    const std::string resp =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: " +
        content_type +
        "\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    send_all(conn, resp.data(), resp.size());
    ::close(conn);
  }
}

}  // namespace toka::obs
