#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <string>

#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace toka::obs {

namespace {

/// One request head may not exceed this (request line + headers); a
/// client that streams more without a blank line is dropped.
constexpr std::size_t kMaxHeadBytes = 8192;

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL);
    if (put <= 0) return false;
    data += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// True when the request line asks for `path` (exactly, or with a query
/// string). The request buffer always starts with the request line.
bool requests_path(const std::string& req, const char* path) {
  const std::string prefix = std::string("GET ") + path;
  if (req.compare(0, prefix.size(), prefix) != 0) return false;
  const char next = req.size() > prefix.size() ? req[prefix.size()] : '\0';
  return next == ' ' || next == '?' || next == '\0';
}

/// Keep-alive verdict for one request head: HTTP/1.1 defaults to
/// keep-alive unless the client says "Connection: close"; HTTP/1.0
/// defaults to close unless it says "Connection: keep-alive".
bool wants_keep_alive(const std::string& head) {
  std::string lower(head.size(), '\0');
  std::transform(head.begin(), head.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  const bool http11 = lower.find(" http/1.1\r\n") != std::string::npos;
  const std::size_t at = lower.find("\r\nconnection:");
  if (at == std::string::npos) return http11;
  const std::size_t value = at + std::strlen("\r\nconnection:");
  const std::size_t end = lower.find("\r\n", value);
  const std::string token =
      lower.substr(value, end == std::string::npos ? end : end - value);
  if (token.find("close") != std::string::npos) return false;
  if (token.find("keep-alive") != std::string::npos) return true;
  return http11;
}

}  // namespace

ScrapeServer::ScrapeServer(const Registry& registry, std::uint16_t port)
    : ScrapeServer(registry, nullptr, port) {}

ScrapeServer::ScrapeServer(const Registry& registry, const Tracer* tracer,
                           std::uint16_t port)
    : registry_(&registry), tracer_(tracer) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw util::IoError("scrape: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::IoError(std::string("scrape: bind/listen failed: ") +
                        std::strerror(err));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

ScrapeServer::~ScrapeServer() {
  // shutdown() wakes the blocked accept(); the loop then sees the failure
  // and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void ScrapeServer::set_health(std::function<std::string()> health) {
  std::lock_guard lock(health_mu_);
  health_ = std::move(health);
}

std::string ScrapeServer::health_body() {
  std::function<std::string()> probe;
  {
    std::lock_guard lock(health_mu_);
    probe = health_;
  }
  if (probe) return probe();
  return "{\"ok\":true}";
}

void ScrapeServer::serve_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;  // listener shut down (or unrecoverable error)
    // Deadline both directions: recv() returns EAGAIN after the timeout on
    // a connected-but-silent client, and send() after one that stopped
    // reading — either way the loop moves on to the next scrape instead of
    // blocking forever on this one.
    timeval tv{};
    tv.tv_sec = kConnTimeoutMs / 1000;
    tv.tv_usec = (kConnTimeoutMs % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    // Request loop: GETs carry no body, so one request is exactly one head
    // (request line + headers + blank line). Pipelined requests land in
    // `buf` together and are peeled off one at a time — each gets its own
    // response, in order, as HTTP requires.
    std::string buf;
    char chunk[1024];
    for (std::size_t served = 0; served < kMaxRequestsPerConn; ++served) {
      std::size_t head_end;
      bool alive = true;
      while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
        if (buf.size() >= kMaxHeadBytes) {
          alive = false;  // header flood: drop the connection
          break;
        }
        const ssize_t got = ::recv(conn, chunk, sizeof chunk, 0);
        if (got <= 0) {
          alive = false;  // closed, errored or silent past the deadline
          break;
        }
        buf.append(chunk, static_cast<std::size_t>(got));
      }
      if (!alive) break;
      const std::string head = buf.substr(0, head_end + 4);
      buf.erase(0, head_end + 4);

      std::string body;
      std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
      if (tracer_ != nullptr && requests_path(head, "/traces")) {
        body = tracer_->render_json();
        content_type = "application/json";
      } else if (requests_path(head, "/healthz")) {
        body = health_body();
        content_type = "application/json";
      } else {
        body = registry_->render_prometheus();
      }
      const bool keep = wants_keep_alive(head) &&
                        served + 1 < kMaxRequestsPerConn;
      const std::string resp =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: " +
          content_type +
          "\r\n"
          "Content-Length: " +
          std::to_string(body.size()) +
          "\r\n"
          "Connection: " +
          (keep ? "keep-alive" : "close") + "\r\n\r\n" + body;
      if (!send_all(conn, resp.data(), resp.size())) break;
      if (!keep) break;
    }
    ::close(conn);
  }
}

}  // namespace toka::obs
