#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace toka::obs {

namespace {
/// Tracer instances constructed so far, process-wide. Seeds each tracer's
/// trace-id counter into its own slice of the id space.
std::atomic<std::uint64_t> tracer_instances{0};
}  // namespace

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kClient: return "client";
    case Stage::kDecode: return "decode";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kExecute: return "execute";
    case Stage::kCork: return "cork";
    case Stage::kRedirect: return "redirect";
    case Stage::kShed: return "shed";
    case Stage::kHandoff: return "handoff";
    case Stage::kPromote: return "promote";
    case Stage::kReplicate: return "replicate";
  }
  return "unknown";
}

const char* to_string(Decision decision) {
  switch (decision) {
    case Decision::kNone: return "none";
    case Decision::kBank: return "bank";
    case Decision::kFresh: return "fresh";
    case Decision::kRefund: return "refund";
    case Decision::kShed: return "shed";
    case Decision::kDenied: return "denied";
    case Decision::kError: return "error";
  }
  return "unknown";
}

Tracer::Tracer(TracerOptions opts) : opts_(opts) {
  TOKA_CHECK_MSG(opts_.rings > 0, "tracer needs at least one ring");
  TOKA_CHECK_MSG(opts_.ring_capacity > 0,
                 "tracer needs a non-empty ring capacity");
  rings_ = std::vector<Ring>(opts_.rings);
  for (Ring& ring : rings_) ring.spans.resize(opts_.ring_capacity);
  // Partition the trace-id space per tracer. Every node in a cluster runs
  // its own tracer, and counters minted independently from 1 would hand
  // two unrelated requests on different nodes the SAME id — a kTraces
  // sweep would then stitch them into one bogus cross-node trace. The
  // first tracer keeps the friendly 1,2,3... sequence; each later one
  // starts 2^44 higher (room for 2^44 ids per tracer, 2^19 tracers).
  ids_.store((tracer_instances.fetch_add(1, std::memory_order_relaxed) << 44) |
                 1,
             std::memory_order_relaxed);
  if (opts_.registry != nullptr) register_metrics();
}

Tracer::~Tracer() {
  if (opts_.registry == nullptr) return;
  opts_.registry->remove("tokend_trace_spans");
  opts_.registry->remove("tokend_trace_spans_forced");
  opts_.registry->remove("tokend_trace_queue_wait_us");
  opts_.registry->remove("tokend_trace_execute_us");
  opts_.registry->remove("tokend_trace_cork_us");
}

void Tracer::register_metrics() {
  Registry& reg = *opts_.registry;
  reg.counter_fn("tokend_trace_spans", [this] {
    return static_cast<double>(recorded_.load(std::memory_order_relaxed));
  });
  forced_total_ = &reg.counter("tokend_trace_spans_forced");
  // The stage histograms the scenario suite and bench report on; the other
  // stages are visible span-by-span via /traces and kTraces instead.
  stage_hist_[static_cast<std::size_t>(Stage::kQueueWait)] =
      &reg.histogram("tokend_trace_queue_wait_us");
  stage_hist_[static_cast<std::size_t>(Stage::kExecute)] =
      &reg.histogram("tokend_trace_execute_us");
  stage_hist_[static_cast<std::size_t>(Stage::kCork)] =
      &reg.histogram("tokend_trace_cork_us");
}

std::int64_t Tracer::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Tracer::sample_next() {
  if (opts_.sample_every == 0) return false;
  if (opts_.sample_every == 1) return true;
  // Per-thread countdown: no shared state on the issue path. The counter
  // is shared across Tracer instances on the same thread, which only
  // interleaves their sample sets — each still sees ~1-in-N.
  thread_local std::uint64_t issued = 0;
  return issued++ % opts_.sample_every == 0;
}

Tracer::Ring& Tracer::ring_for_thread() {
  thread_local const Tracer* bound_tracer = nullptr;
  thread_local std::size_t bound_slot = 0;
  if (bound_tracer != this) {
    bound_tracer = this;
    bound_slot = ring_rr_.fetch_add(1, std::memory_order_relaxed);
  }
  return rings_[bound_slot % rings_.size()];
}

bool Tracer::record(Stage stage, Decision decision, std::uint64_t trace_id,
                    std::uint64_t key, std::uint32_t ns, std::int64_t start_us,
                    std::int64_t dur_us, bool sampled) {
  const bool forced = decision == Decision::kShed ||
                      decision == Decision::kDenied ||
                      decision == Decision::kError ||
                      dur_us >= opts_.slow_threshold_us;
  if (!sampled && !forced) return false;

  SpanRecord span;
  span.trace_id = trace_id;
  span.key = key;
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.ns = ns;
  span.stage = stage;
  span.decision = decision;
  span.flags = static_cast<std::uint8_t>((sampled ? kSpanSampled : 0) |
                                         (forced ? kSpanForced : 0));

  Ring& ring = ring_for_thread();
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    ring.spans[ring.next % ring.spans.size()] = span;
    ++ring.next;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (forced && forced_total_ != nullptr) forced_total_->increment();
  Histogram* hist = stage_hist_[static_cast<std::size_t>(stage)];
  if (hist != nullptr) hist->observe(static_cast<double>(dur_us));
  return true;
}

std::vector<SpanRecord> Tracer::snapshot(std::size_t max_spans) const {
  std::vector<SpanRecord> out;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mu);
    const std::size_t held =
        std::min<std::uint64_t>(ring.next, ring.spans.size());
    const std::uint64_t oldest = ring.next - held;
    for (std::uint64_t i = 0; i < held; ++i)
      out.push_back(ring.spans[(oldest + i) % ring.spans.size()]);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  if (max_spans > 0 && out.size() > max_spans)
    out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(max_spans));
  return out;
}

std::string Tracer::render_json(std::size_t max_spans) const {
  const std::vector<SpanRecord> spans = snapshot(max_spans);
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"trace_id\":" + std::to_string(s.trace_id);
    out += ",\"key\":" + std::to_string(s.key);
    out += ",\"ns\":" + std::to_string(s.ns);
    out += ",\"stage\":\"";
    out += to_string(s.stage);
    out += "\",\"decision\":\"";
    out += to_string(s.decision);
    out += "\",\"start_us\":" + std::to_string(s.start_us);
    out += ",\"dur_us\":" + std::to_string(s.dur_us);
    out += ",\"sampled\":";
    out += (s.flags & kSpanSampled) != 0 ? "true" : "false";
    out += ",\"forced\":";
    out += (s.flags & kSpanForced) != 0 ? "true" : "false";
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace toka::obs
