// Routing client for a tokad cluster: one logical tokend endpoint over
// many nodes.
//
// The client caches a ClusterMap and the HashRing it implies, routes every
// (namespace, key) op to its owner through a per-node service::Client (the
// existing pipelined async core — any number of ops in flight per node),
// and recovers from staleness by itself:
//
//   - a RedirectResponse (protocol::RedirectError) means our map is
//     behind: refresh the map from the redirecting node and reissue;
//   - a timeout or connection-closed IoError means the node may be dead:
//     refresh the map from the other members (rotating) and reissue;
//   - typed server rejections (protocol::RpcError — unknown namespace,
//     invalid config) are NOT retried: the cluster answered, the answer is
//     no.
//
// Every op gets `max_attempts` tries in total; what surfaces to the caller
// is either the result or the last error — so through a kill/join churn a
// well-configured caller sees only internal redirect/refresh retries, not
// failures. Batch acquires fan out per owner node concurrently and stitch
// results back positionally; a redirected sub-batch is re-split under the
// refreshed map (ownership may have fragmented further) and reissued.
//
// Transport model: one endpoint per (this client, server node), provided
// by the EndpointFactory — service::Client owns its endpoint's receive
// handler, so endpoints cannot be shared between per-node clients. Works
// identically over InProc and TCP fabrics.
//
// Per-node clients are cached for the ClusterClient's lifetime and never
// pruned (safe retirement of a possibly-in-use client would need
// per-call reference counting). A very long-lived process in a cluster
// whose joins always mint fresh node ids accumulates one idle per-node
// client per departed member; recreate the ClusterClient at a convenient
// quiet point if that ever matters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "cluster/hash_ring.hpp"
#include "obs/telemetry.hpp"
#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/client.hpp"
#include "util/types.hpp"

namespace toka::obs {
class Tracer;
}

namespace toka::cluster {

struct ClusterClientConfig {
  /// Per-RPC deadline. Deliberately short next to service::Client's 5s
  /// default: a dead node should cost one short timeout, not a stall —
  /// the retry budget absorbs the recovery.
  TimeUs call_timeout_us = 250 * 1'000;
  /// Total tries per logical op (the first issue included).
  int max_attempts = 10;
};

class ClusterClient {
 public:
  /// Yields this client's own transport endpoint for talking to `server`.
  /// Called at most once per server node (clients are cached); must stay
  /// valid for any node id that can ever appear in a membership map.
  using EndpointFactory = std::function<runtime::Transport&(NodeId server)>;

  template <typename T>
  using Callback = service::Client::Callback<T>;

  /// Starts from `initial_map` (also the seed list for map refreshes when
  /// the cached map goes empty or all-dead).
  ClusterClient(EndpointFactory factory, ClusterMap initial_map,
                ClusterClientConfig config = {});

  /// Rejects every in-flight internal retry, then tears down the per-node
  /// clients. Contract (same as service::Client): the caller must not
  /// have its own detached async ops outstanding at destruction — sync
  /// wrappers satisfy this by construction, callback-style acquire_async
  /// callers must wait their completions out first. Internal retries of
  /// already-completed logical ops are absorbed: once teardown begins no
  /// new per-node client can be built and every reissue surfaces "shut
  /// down" instead.
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Attaches a flight recorder: every logical data op mints ONE trace
  /// context (sampled per the tracer's 1-in-N policy) that rides through
  /// all of the op's internal redirect/refresh retries — the spans a
  /// redirecting node, the owning node and this client record all carry
  /// the same trace id, which is what makes a cross-node redirect legible
  /// in a kTraces snapshot. Per-node clients record Stage::kClient spans
  /// into the same tracer. Attach before the first data op, from the
  /// constructing thread; the tracer must outlive the client.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // ---------------------------------------------------------- data ops
  // Sync wrappers are async + .get(); they throw the last error after the
  // retry budget is spent (util::IoError / protocol::RpcError).

  service::AcquireResult acquire(service::NamespaceId ns, std::uint64_t key,
                                 Tokens n);
  service::RefundResult refund(service::NamespaceId ns, std::uint64_t key,
                               Tokens n);
  service::QueryResult query(service::NamespaceId ns, std::uint64_t key);

  /// Fans the batch out per owner node (one BatchAcquire frame per node in
  /// flight concurrently); results align with `ops`.
  std::vector<service::AcquireResult> acquire_batch(
      service::NamespaceId ns, std::span<const service::AcquireOp> ops);

  /// Async acquire with the same internal retry policy; `done` runs on a
  /// transport receive thread (or inline, if the op fails to issue).
  void acquire_async(service::NamespaceId ns, std::uint64_t key, Tokens n,
                     Callback<service::AcquireResult> done);

  // ------------------------------------------------------------- admin

  /// Configures `ns` on every node of the current map (every node must
  /// hold every namespace — accounts move between them). Returns how many
  /// nodes acknowledged; dead nodes are skipped.
  std::size_t configure_namespace_all(service::NamespaceId ns,
                                      const service::NamespaceConfig& config);

  /// Pushes `map` to its members and to every current member no longer in
  /// it (so leavers hand their accounts off), newest members first, then
  /// adopts it locally. Returns how many nodes acknowledged.
  std::size_t push_map(const ClusterMap& map);

  /// Fetches the map from the cluster (rotating over members, then seeds)
  /// and adopts it if newer. Returns true if a fetch succeeded.
  bool refresh_map();

  // ----------------------------------------------------- observability

  /// One cluster-wide telemetry sweep: every live member's kStats
  /// snapshot, plus the obs::merge_snapshots combination (counters and
  /// cluster-total gauges summed, histograms merged bucket-wise with the
  /// single-node ≤1/16 quantile-error bound intact).
  struct ClusterStats {
    /// Merged view across every node that answered.
    std::vector<obs::Metric> merged;
    /// Raw per-node snapshots (per-node-identity gauges — epochs, lag —
    /// are meaningful here, not in the sum).
    std::vector<std::pair<NodeId, std::vector<obs::Metric>>> per_node;
  };

  /// Fans kStats over every member of the current map; dead or v1 nodes
  /// are skipped (a cluster sweep must not fail because one node is
  /// mid-crash). Throws util::IoError only if NO node answered.
  ClusterStats cluster_stats();

  /// Fans kTraces over every member and stitches the spans into one
  /// timeline ordered by start time. `trace_id` filters to a single
  /// trace (0 keeps everything); `max_spans_per_node` caps each node's
  /// reply (0 = server default). Each span's `node` field identifies the
  /// recorder, so a redirect, handoff or promotion hop shows up as one
  /// trace id spanning several nodes. Dead nodes are skipped; throws
  /// util::IoError only if NO node answered.
  std::vector<service::protocol::TraceSpan> fetch_cluster_traces(
      std::uint64_t trace_id = 0, std::uint32_t max_spans_per_node = 0);

  /// The currently cached membership map.
  ClusterMap map() const;

  // ---------------------------------------------------------- counters

  /// Redirects followed (map refreshed + op reissued).
  std::uint64_t redirects_followed() const { return redirects_.load(); }
  /// IoError (timeout / connection closed) retries.
  std::uint64_t io_retries() const { return io_retries_.load(); }
  /// Map refreshes that adopted a newer epoch.
  std::uint64_t maps_adopted() const { return maps_adopted_.load(); }
  /// Map fetches actually put on the wire. Concurrent async refresh wants
  /// coalesce behind one in-flight fetch, so a node kill with N ops in
  /// flight costs O(1) fetches, not O(N) — this counter is what the churn
  /// regression test asserts on.
  std::uint64_t map_refreshes() const { return map_refreshes_.load(); }

  /// Exports the client's counters into `registry` under "tokad_client_*"
  /// names (redirects_followed, io_retries, maps_adopted, map_refreshes).
  /// Call at most once; the registry must outlive the client (the
  /// destructor unregisters).
  void register_metrics(obs::Registry& registry);

 private:
  struct Routing {
    ClusterMap map;
    HashRing ring;
  };

  /// One per-node client and the mutex guarding its construction. The
  /// registry lock (mu_) is never held while a service::Client is built —
  /// construction installs transport handlers, and holding mu_ across
  /// that would order mu_ against the endpoint's handler lock, the
  /// inverse of what every delivery callback (handler lock held, then
  /// mu_ for routing) does. Once built, `ready` makes lookups lock-free,
  /// so a completion callback (which runs under its endpoint's handler
  /// lock) never touches slot mutexes of live clients either.
  struct NodeSlot {
    std::mutex mu;
    std::atomic<service::Client*> ready{nullptr};
    std::unique_ptr<service::Client> client;
  };

  std::shared_ptr<const Routing> routing() const;
  /// Adopts `map` if strictly newer than the cached one.
  void adopt(ClusterMap map);
  /// The per-node client, built on first contact. nullptr once teardown
  /// has begun (construction is refused under the slot lock, so the
  /// destructor sweep can never leave a freshly-built client behind).
  service::Client* client_for(NodeId node);
  /// The next node to ask for a map (members first, seeds as fallback).
  NodeId refresh_target();
  /// Async map refresh; `resume` runs whether or not the fetch succeeded.
  /// Concurrent calls coalesce: while one fetch is in flight, later
  /// resumes queue behind it and all run off that one fetch's completion
  /// (a node kill with many ops in flight triggers one fetch, not one per
  /// op — the refresh stampede bugfix).
  void refresh_map_async(NodeId preferred, std::function<void()> resume);
  /// Clears the in-flight flag and runs every queued waiter (outside mu_).
  void finish_refresh();

  /// One retrying op: `issue(client, done)` sends the real RPC; Retrier
  /// owns the routing, failure triage and reissue loop.
  template <typename Result>
  void run_op(service::NamespaceId ns, std::uint64_t key,
              std::function<void(service::Client&,
                                 Callback<Result>)> issue,
              Callback<Result> done, int attempt);

  template <typename Result>
  Result run_sync(service::NamespaceId ns, std::uint64_t key,
                  std::function<void(service::Client&, Callback<Result>)>
                      issue);

  void batch_group_async(
      service::NamespaceId ns, std::vector<service::AcquireOp> ops,
      std::vector<std::size_t> indices,
      std::shared_ptr<struct BatchState> state, int attempt);

  /// A fresh per-logical-op trace context, or nullopt when untraced.
  std::optional<service::protocol::TraceContext> mint_trace();

  EndpointFactory factory_;
  ClusterClientConfig config_;
  std::vector<NodeId> seeds_;
  obs::Tracer* tracer_ = nullptr;

  mutable std::mutex mu_;
  std::shared_ptr<const Routing> routing_;
  std::unordered_map<NodeId, std::shared_ptr<NodeSlot>> clients_;
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> refresh_cursor_{0};
  bool refresh_inflight_ = false;  ///< guarded by mu_
  std::vector<std::function<void()>> refresh_waiters_;  ///< guarded by mu_

  std::atomic<std::uint64_t> redirects_{0};
  std::atomic<std::uint64_t> io_retries_{0};
  std::atomic<std::uint64_t> maps_adopted_{0};
  std::atomic<std::uint64_t> map_refreshes_{0};

  obs::Registry* registry_ = nullptr;
  std::vector<std::string> metric_names_;
};

}  // namespace toka::cluster
