// Consistent-hash ring mapping (namespace, key) pairs to cluster nodes.
//
// Each member contributes `vnodes` points on a 64-bit ring; a key is owned
// by the node of the first point at or after the key's hash (wrapping).
// Virtual nodes smooth the load split and make membership change minimal:
// removing a node only remaps the keys it owned, and adding one only pulls
// keys onto the newcomer — every other (namespace, key) keeps its owner,
// which is what keeps handoff traffic proportional to the churn instead of
// the keyspace.
//
// Key hashing reuses AccountTable's partitioning mix (fold_key followed by
// the splitmix64 finalizer), so the ring and the table agree on what a key
// is: two keys that collide into one table shard still spread over the
// ring, and — more importantly — the ring is deterministic across nodes
// and clients. The ring is a pure function of a ClusterMap: equal maps
// route identically everywhere, with no further coordination.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "service/account_table.hpp"
#include "util/types.hpp"

namespace toka::cluster {

class HashRing {
 public:
  /// An empty ring owns nothing (owner() returns kNoNode).
  HashRing() = default;

  /// Builds the ring for `nodes` with `vnodes` points per node. Duplicate
  /// node ids are collapsed. Throws util::InvariantError if vnodes == 0
  /// with a non-empty node set.
  HashRing(std::span<const NodeId> nodes, std::uint32_t vnodes);

  /// The ring a membership map describes.
  explicit HashRing(const ClusterMap& map)
      : HashRing(std::span<const NodeId>(map.nodes), map.vnodes) {}

  bool empty() const { return points_.empty(); }
  std::size_t node_count() const { return node_count_; }
  std::size_t point_count() const { return points_.size(); }

  /// The node owning (ns, key), or kNoNode on an empty ring.
  NodeId owner(service::NamespaceId ns, std::uint64_t key) const {
    return owner_of_point(key_point(ns, key));
  }

  /// Ring-point lookup for a pre-computed hash (micro-benchmarks, tests).
  NodeId owner_of_point(std::uint64_t point) const;

  /// The key's replication group: the owner followed by up to `k` distinct
  /// successor nodes, walking the ring forward from the owner's point.
  /// Virtual-node points belonging to already-collected nodes are skipped,
  /// so the group never repeats a node and is capped at node_count().
  /// Empty ring -> empty vector. successors(ns, key, 0) == {owner}.
  std::vector<NodeId> successors(service::NamespaceId ns, std::uint64_t key,
                                 std::size_t k) const {
    return successors_of_point(key_point(ns, key), k);
  }

  /// Successor-group lookup for a pre-computed ring point (benchmarks).
  std::vector<NodeId> successors_of_point(std::uint64_t point,
                                          std::size_t k) const;

  /// Where (ns, key) lands on the ring: AccountTable's key mix, so the
  /// ring is splitmix64-compatible with the table's shard partitioning.
  static std::uint64_t key_point(service::NamespaceId ns, std::uint64_t key);

 private:
  /// (ring point, node), sorted by point then node — ties break the same
  /// way on every host.
  std::vector<std::pair<std::uint64_t, NodeId>> points_;
  std::size_t node_count_ = 0;
};

}  // namespace toka::cluster
