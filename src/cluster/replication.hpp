// Replicated ownership: per-key replication groups on the HashRing, so a
// crashed primary forfeits at most the replication lag instead of every
// banked balance it held.
//
// Roles are per key, not per node. For every (namespace, key) the ring
// owner is the *primary* — the only node that grants — and the key's next
// `replicas` distinct ring successors are its *followers*. The primary
// streams absolute per-account deltas (latest balance + a conservative
// install floor) to its followers in kReplicate frames, batched at drain
// boundaries: one frame per follower per table flush, never one per op.
// Followers apply the deltas to a passive replica store and ack the
// highest emission round received (kReplicaAck); the primary tracks the
// ack watermark per follower lane.
//
// Failover weakens the cluster's forfeit-everything crash rule to
// "duplicate never, forfeit at most the lag":
//
//   - never duplicate: a follower that is promoted installs the *floor* of
//     its latest replica, not the balance — and the primary's spend gate
//     (AccountTable's repl_gate) guarantees the primary never granted
//     below any floor still unacked. Whatever floor a promoted follower
//     installs, the dead primary's balance was at least that high, so the
//     install can only under-grant. The §3.4 audit stays clean through a
//     kill (the churn test asserts it).
//   - forfeit <= lag: what dies with the primary is the gap between its
//     true balance and the floor its followers hold — bounded by the
//     configured headroom plus whatever the stream had not yet delivered.
//
// Promotion is just membership change: the coordinator (the dead node's
// id-order successor, or any kPromote sender) builds the current map
// without the dead node — a strictly newer epoch — applies it locally and
// broadcasts ApplyMap. Replica installs ride the map application: any node
// adopting a map learns which sources fell out of membership and installs
// the replicas it now owns (ClusterServer calls on_map_applied inside
// apply_map), so explicit promotion, gossiped maps and operator-driven
// membership edits all converge on the same code path and are idempotent.
//
// Liveness trade-off, by design: grants above the gated headroom wait for
// follower acks, so a stuck follower back-pressures its primaries' bursts
// (steady-state traffic under the headroom is unaffected) until membership
// removes it. That is the conservative end of the paper's proactive /
// reactive spectrum — availability is spent where the budget bound would
// otherwise be at risk (see DESIGN.md, "Replicated ownership").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "cluster/hash_ring.hpp"
#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/protocol.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace toka::obs {
class Tracer;
}  // namespace toka::obs

namespace toka::cluster {

/// Outcome of installing replicas after a membership change.
struct ReplicaInstallResult {
  std::uint64_t installed = 0;  ///< replica accounts installed here
  Tokens forfeited = 0;         ///< tokens dropped conservatively doing so
};

/// One node's half of the delta-stream protocol: primary-side emission and
/// lag tracking, follower-side replica store and promotion install. Owned
/// by a ClusterServer; thread-safe (flushes are serialized, the store and
/// lane maps have their own locks).
class ReplicationEngine {
 public:
  /// `table` and `transport` must outlive the engine. `headroom` is how
  /// far above the advertised floor a primary may spend without waiting
  /// for an ack (0 = auto: half the namespace capacity); it is forwarded
  /// to AccountTable::enable_replication by the owning server.
  ReplicationEngine(service::AccountTable& table,
                    runtime::Transport& transport, ClusterMap map);

  ReplicationEngine(const ReplicationEngine&) = delete;
  ReplicationEngine& operator=(const ReplicationEngine&) = delete;

  /// Optional flight recorder: sampled flush rounds stamp one trace
  /// context onto every follower frame of the round and record a sender
  /// kReplicate span, so primary → follower delta legs stitch under one
  /// id (the owning ClusterServer wires its tracer here).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // ------------------------------------------------------- primary side

  /// Drains the dirty accounts of `shards` and streams one kReplicate
  /// frame per follower that got deltas, stamped with the next emission
  /// round. Deltas whose key this node no longer owns are skipped (a map
  /// transition already moved them). Serialized across callers; safe from
  /// request threads and engine workers alike (the drain itself locks per
  /// table mode — exclusive-shard callers must own the shards).
  void flush_shards(const std::vector<std::size_t>& shards);

  /// A follower acked its stream: advances the lane watermark that lets
  /// account spend gates collapse (and the lag gauge fall).
  void on_ack(NodeId from, const service::protocol::ReplicaAckRequest& ack);

  // ------------------------------------------------------ follower side

  /// Applies a primary's delta frame to the replica store (absolute
  /// deltas: last write per account wins) and acks the highest round
  /// received from that source.
  void on_replicate(NodeId from,
                    const service::protocol::ReplicateRequest& r);

  /// Ran by ClusterServer inside every successful map adoption: installs
  /// (conservatively, at the floor) every replica whose source fell out of
  /// membership and whose key the new ring places here; drops replicas
  /// this node no longer follows; prunes lanes of departed followers; and
  /// adopts the new topology for subsequent flushes. Returns the install
  /// accounting (the caller owns the forfeit counter).
  ReplicaInstallResult on_map_applied(const ClusterMap& map,
                                      const HashRing& ring);

  // ----------------------------------------------------------- counters

  /// kReplicate frames sent (per follower, not per delta).
  std::uint64_t deltas_sent() const {
    return deltas_sent_.load(std::memory_order_relaxed);
  }
  /// Account deltas carried by those frames.
  std::uint64_t delta_accounts_sent() const {
    return delta_accounts_sent_.load(std::memory_order_relaxed);
  }
  /// kReplicaAck frames received back.
  std::uint64_t acks_received() const {
    return acks_received_.load(std::memory_order_relaxed);
  }
  /// Replica accounts currently held for other primaries.
  std::size_t replica_accounts() const;
  /// Cumulative replica accounts promoted into the table (all map
  /// adoptions combined).
  std::uint64_t replica_installs() const {
    return installs_.load(std::memory_order_relaxed);
  }
  /// Cumulative tokens the conservative installs dropped — the measured
  /// failover forfeit (bounded by headroom + stream lag per account).
  Tokens replica_install_forfeited() const {
    return install_forfeited_.load(std::memory_order_relaxed);
  }
  /// Worst-case stream lag right now: max over follower lanes of
  /// (last emitted round - acked round). 0 with no lanes or all caught up.
  std::uint64_t lag_rounds() const;

 private:
  struct ReplicaKey {
    service::NamespaceId ns = service::kDefaultNamespace;
    std::uint64_t key = 0;
    friend bool operator==(const ReplicaKey&, const ReplicaKey&) = default;
  };
  struct ReplicaKeyHash {
    std::size_t operator()(const ReplicaKey& k) const {
      std::uint64_t state = service::AccountTable::fold_key(k.ns, k.key);
      return static_cast<std::size_t>(util::splitmix64(state));
    }
  };
  /// Latest replicated state of one foreign account. `source` is the
  /// primary that streamed it: only replicas of a *departed* source are
  /// ever installed, so a live primary's stream can never be double-
  /// counted against it.
  struct ReplicaState {
    Tokens balance = 0;
    Tokens floor = 0;
    NodeId source = kNoNode;
  };
  /// Primary-side per-follower stream state. Lanes die only with
  /// membership (pruned in on_map_applied) — an unresponsive follower
  /// back-pressures bursts rather than being silently written off, which
  /// is what keeps the promoted-floor invariant airtight.
  struct Lane {
    std::uint64_t last_sent = 0;  ///< highest round emitted to this lane
    std::uint64_t acked = 0;      ///< highest round the follower acked
  };

  /// Min over lanes of the acked round (the watermark gates collapse on);
  /// with no lanes, the current round — nothing is in flight. Caller
  /// holds mu_.
  std::uint64_t min_acked_locked() const;

  service::AccountTable* table_;
  runtime::Transport* transport_;
  obs::Tracer* tracer_ = nullptr;

  /// Serializes flushes end-to-end, so emission rounds increase in frame
  /// send order on every lane (the property the ack watermark relies on).
  std::mutex flush_mu_;
  std::vector<service::ReplicaDeltaExport> scratch_;

  mutable std::mutex mu_;  ///< lanes, round counter, topology
  std::uint64_t round_ = 0;
  std::uint64_t next_frame_id_ = 1;
  std::map<NodeId, Lane> lanes_;
  ClusterMap map_;
  HashRing ring_;

  mutable std::mutex store_mu_;
  std::unordered_map<ReplicaKey, ReplicaState, ReplicaKeyHash> store_;
  /// Highest round received per source (the value acked back).
  std::unordered_map<NodeId, std::uint64_t> source_rounds_;

  std::atomic<std::uint64_t> deltas_sent_{0};
  std::atomic<std::uint64_t> delta_accounts_sent_{0};
  std::atomic<std::uint64_t> acks_received_{0};
  std::atomic<std::uint64_t> installs_{0};
  std::atomic<Tokens> install_forfeited_{0};
};

}  // namespace toka::cluster
