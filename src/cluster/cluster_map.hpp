// The tokad cluster's membership snapshot.
//
// A ClusterMap is the unit of membership agreement: the set of live tokend
// node ids, the virtual-node fan-out of the consistent-hash ring derived
// from it, and a monotonically increasing epoch. Every join or leave bumps
// the epoch; nodes and clients compare epochs to decide who is stale. The
// map is deliberately tiny, plain data: it travels verbatim in protocol v2
// ClusterMap/ApplyMap frames, and the HashRing a given map describes is a
// pure function of it — two parties holding equal maps route identically
// without any further coordination.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace toka::cluster {

/// Upper bound on members per map frame; a decoded count above this is
/// rejected before any allocation happens.
inline constexpr std::size_t kMaxClusterNodes = 4096;

/// Default virtual nodes per member: enough that removing one member of a
/// small cluster spreads its keyspace roughly evenly over the survivors.
inline constexpr std::uint32_t kDefaultVnodes = 64;

struct ClusterMap {
  /// Membership version. Nodes only ever adopt a strictly newer epoch, so
  /// a re-delivered or out-of-order map can never roll membership back.
  std::uint64_t epoch = 0;
  /// Virtual nodes per member on the derived HashRing. Must be positive.
  std::uint32_t vnodes = kDefaultVnodes;
  /// Member node ids, strictly increasing (the wire codec enforces this).
  std::vector<NodeId> nodes;
  /// Replication factor: every key's primary streams account deltas to its
  /// `replicas` distinct ring successors, so a crashed primary forfeits at
  /// most the replication lag instead of every banked balance. Zero (the
  /// default) keeps the original forfeit-on-crash behaviour. Declared last
  /// so positional aggregate init of {epoch, vnodes, nodes} stays valid.
  std::uint32_t replicas = 0;

  bool contains(NodeId node) const {
    return std::binary_search(nodes.begin(), nodes.end(), node);
  }

  /// Sorts and dedupes `nodes` (builder convenience; decoded maps are
  /// already canonical).
  void normalize() {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  }

  /// A copy with `node` added and the epoch bumped; already a member →
  /// unchanged copy (same epoch), so a replayed join cannot trigger
  /// cluster-wide no-op handoff sweeps.
  ClusterMap with_node(NodeId node) const {
    ClusterMap out = *this;
    if (!out.contains(node)) {
      out.nodes.push_back(node);
      out.normalize();
      ++out.epoch;
    }
    return out;
  }

  /// A copy with `node` removed and the epoch bumped; not a member →
  /// unchanged copy (same epoch).
  ClusterMap without_node(NodeId node) const {
    ClusterMap out = *this;
    if (std::erase(out.nodes, node) > 0) ++out.epoch;
    return out;
  }

  friend bool operator==(const ClusterMap&, const ClusterMap&) = default;
};

}  // namespace toka::cluster
