#include "cluster/cluster_server.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace toka::cluster {

namespace proto = service::protocol;

ClusterServer::ClusterServer(service::AccountTable& table,
                             runtime::Transport& transport, ClusterMap map,
                             service::ServerOptions options)
    : table_(&table),
      transport_(&transport),
      tap_(transport),
      server_(table, tap_, with_node(options, transport)),
      tracer_(options.tracer),
      registry_(options.registry),
      engine_(options.engine),
      repl_headroom_(options.replication_headroom),
      repl_flush_ops_(std::max<std::uint32_t>(options.replication_flush_ops, 1)),
      map_(std::move(map)),
      ring_(map_) {
  repl_ = std::make_unique<ReplicationEngine>(table, transport, map_);
  repl_->set_tracer(tracer_);
  if (map_.replicas > 0) table_->enable_replication(repl_headroom_);
  if (engine_ != nullptr) {
    // Engine plane: deltas are captured at the workers' drain boundaries
    // (the locked-plane per-request flush would run before the queued ops
    // even execute). Precompute each worker's shard set once.
    worker_shards_.resize(engine_->worker_count());
    for (std::size_t s = 0; s < table_->shard_count(); ++s)
      worker_shards_[s % engine_->worker_count()].push_back(s);
    engine_->set_drain_hook(
        [this](std::size_t w) { flush_worker_shards(w); });
  }
  if (registry_) register_metrics();
  transport_->set_peer_down_handler(
      [this](NodeId peer) { on_peer_down(peer); });
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

ClusterServer::~ClusterServer() {
  // Quiesce the real transport first; the inner server then detaches from
  // the tap, which nothing can deliver through anymore. Only then is it
  // safe to pull the cluster gauges out of the registry. The engine's
  // drain hook goes first of all — workers keep draining until the engine
  // itself stops, and the hook calls back into this object.
  if (engine_ != nullptr) engine_->set_drain_hook({});
  transport_->set_peer_down_handler({});
  transport_->set_handler({});
  if (registry_) {
    for (const std::string& name : metric_names_) registry_->remove(name);
  }
}

void ClusterServer::flush_worker_shards(std::size_t w) {
  repl_->flush_shards(worker_shards_[w]);
}

void ClusterServer::register_metrics() {
  const auto add = [&](const std::string& name) {
    metric_names_.push_back(name);
    return name;
  };
  registry_->gauge(add("tokad_ring_epoch"),
                   [this] { return static_cast<double>(map_epoch()); });
  registry_->counter_fn(add("tokad_redirects_sent"), [this] {
    return static_cast<double>(
        redirects_sent_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_maps_applied"), [this] {
    return static_cast<double>(maps_applied_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_handoffs_sent"), [this] {
    return static_cast<double>(handoffs_sent_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_handoffs_installed"), [this] {
    return static_cast<double>(
        handoffs_installed_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_tokens_forfeited"), [this] {
    return static_cast<double>(
        tokens_forfeited_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_replica_deltas"),
                        [this] { return static_cast<double>(
                                     repl_->deltas_sent()); });
  registry_->counter_fn(add("tokad_replica_acks"),
                        [this] { return static_cast<double>(
                                     repl_->acks_received()); });
  registry_->counter_fn(add("tokad_replica_promotions"), [this] {
    return static_cast<double>(promotions_.load(std::memory_order_relaxed));
  });
  registry_->gauge(add("tokad_replication_lag"), [this] {
    return static_cast<double>(repl_->lag_rounds());
  });
}

ClusterMap ClusterServer::map() const {
  std::shared_lock lock(map_mu_);
  return map_;
}

std::uint64_t ClusterServer::map_epoch() const {
  std::shared_lock lock(map_mu_);
  return map_.epoch;
}

NodeId ClusterServer::owner_of(service::NamespaceId ns,
                               std::uint64_t key) const {
  std::shared_lock lock(map_mu_);
  return ring_.owner(ns, key);
}

std::optional<proto::TraceContext> ClusterServer::mint_cluster_trace() {
  if (tracer_ == nullptr) return std::nullopt;
  // Cluster control events are rare and always worth a timeline: every
  // minted context is sampled.
  return proto::TraceContext{tracer_->next_trace_id(), true};
}

ApplyOutcome ClusterServer::apply_map(const ClusterMap& map) {
  return apply_map(map, mint_cluster_trace());
}

ApplyOutcome ClusterServer::apply_map(
    const ClusterMap& map, const std::optional<proto::TraceContext>& trace) {
  HashRing ring;
  {
    std::unique_lock lock(map_mu_);
    // Strictly newer only: a re-delivered or reordered map can never roll
    // membership back, so concurrent applies settle on the max epoch.
    if (map.epoch <= map_.epoch) return {false, map_.epoch, 0};
    map_ = map;
    ring_ = HashRing(map_);
    ring = ring_;
  }
  maps_applied_.fetch_add(1, std::memory_order_relaxed);

  // The new ring is already answering (requests for moved keys redirect
  // from here on), so extraction can only see post-install grants: a moved
  // account's balance leaves exactly once. If any of these frames is lost
  // the tokens are forfeited — never resurrected here.
  const NodeId self_id = self();
  const std::vector<service::AccountExport> moved = table_->extract_if(
      [&](service::NamespaceId ns, std::uint64_t key) {
        return ring.owner(ns, key) != self_id;
      });
  std::uint64_t sent = 0;
  const std::int64_t t_handoff =
      tracer_ != nullptr && trace ? obs::Tracer::now_us() : 0;
  for (const service::AccountExport& account : moved) {
    const NodeId target = ring.owner(account.ns, account.key);
    if (target == kNoNode || target == self_id) {
      // Unroutable (empty ring): the extracted balance just died with
      // nowhere to go. Count it — this is a forfeit site.
      tokens_forfeited_.fetch_add(account.balance, std::memory_order_relaxed);
      continue;
    }
    const std::uint64_t id =
        next_handoff_id_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::byte> frame = proto::encode(proto::HandoffRequest{
        id, map.epoch, account.ns, account.key, account.balance});
    // Every handoff of this adoption carries the adoption's trace context:
    // the receivers' install spans stitch to this node's sweep span under
    // one id, across however many nodes the ring scattered the keys to.
    if (trace) proto::attach_trace_context(frame, *trace);
    transport_->send(target, std::move(frame));
    ++sent;
  }
  handoffs_sent_.fetch_add(sent, std::memory_order_relaxed);
  if (tracer_ != nullptr && trace && sent > 0) {
    // One sender-side span for the whole extraction sweep (key = how many
    // accounts left; per-account legs are the receivers' spans).
    tracer_->record(obs::Stage::kHandoff, obs::Decision::kNone,
                    trace->trace_id, sent, service::kDefaultNamespace,
                    t_handoff, obs::Tracer::now_us() - t_handoff,
                    /*sampled=*/true);
  }

  ApplyOutcome outcome{true, map.epoch, sent};
  // Replica installs ride every map adoption: sources that fell out of
  // membership get their surviving state promoted (conservatively, at the
  // floor) wherever the new ring says it now lives. Running after the
  // extraction sweep keeps the two key sets disjoint — installs target
  // keys this node owns under the *new* ring, extraction removed the rest.
  if (map.replicas > 0 && !table_->replication_enabled())
    table_->enable_replication(repl_headroom_);
  const ReplicaInstallResult installs = repl_->on_map_applied(map, ring);
  outcome.replica_installed = installs.installed;
  outcome.replica_forfeited = installs.forfeited;
  if (installs.forfeited > 0)
    tokens_forfeited_.fetch_add(installs.forfeited, std::memory_order_relaxed);
  return outcome;
}

PromoteOutcome ClusterServer::promote(NodeId failed,
                                      std::uint64_t expected_epoch) {
  return promote(failed, expected_epoch, mint_cluster_trace());
}

PromoteOutcome ClusterServer::promote(
    NodeId failed, std::uint64_t expected_epoch,
    const std::optional<proto::TraceContext>& trace) {
  PromoteOutcome out;
  const std::int64_t t0 =
      tracer_ != nullptr && trace ? obs::Tracer::now_us() : 0;
  const ClusterMap cur = map();
  out.epoch = cur.epoch;
  if (failed == self() || !cur.contains(failed)) return out;
  if (expected_epoch != 0 && expected_epoch != cur.epoch) return out;
  const ClusterMap next = cur.without_node(failed);
  const ApplyOutcome applied = apply_map(next, trace);
  out.epoch = applied.epoch;
  if (!applied.accepted) return out;  // lost to a newer map — fine, done
  out.accepted = true;
  out.installed = applied.replica_installed;
  out.forfeited = applied.replica_forfeited;
  promotions_.fetch_add(1, std::memory_order_relaxed);
  // Broadcast the verdict: each survivor adopts the same strictly-newer
  // map and installs its own replicas of the dead node. Re-deliveries are
  // harmless (strictly-newer rule) and stale clients learn by redirect.
  // The broadcast carries the promotion's trace context, so the survivors'
  // adoption spans land under the coordinator's trace id.
  for (const NodeId node : next.nodes) {
    if (node == self()) continue;
    const std::uint64_t id =
        next_handoff_id_.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::byte> frame =
        proto::encode(proto::ApplyMapRequest{id, next});
    if (trace) proto::attach_trace_context(frame, *trace);
    transport_->send(node, std::move(frame));
  }
  if (tracer_ != nullptr && trace) {
    // Coordinator-side promotion span; `key` holds the dead node's id.
    tracer_->record(obs::Stage::kPromote, obs::Decision::kNone,
                    trace->trace_id, failed, service::kDefaultNamespace, t0,
                    obs::Tracer::now_us() - t0, /*sampled=*/true);
  }
  return out;
}

void ClusterServer::on_peer_down(NodeId peer) {
  const ClusterMap cur = map();
  if (cur.replicas == 0 || peer == self() || !cur.contains(peer)) return;
  // Exactly one survivor coordinates the epoch bump: the dead node's
  // id-order successor (wrapping past the top), so simultaneous peer-down
  // observations on every survivor don't race competing promotions. The
  // member list is sorted.
  NodeId coordinator = kNoNode;
  for (const NodeId node : cur.nodes) {
    if (node > peer) {
      coordinator = node;
      break;
    }
  }
  if (coordinator == kNoNode) {
    for (const NodeId node : cur.nodes) {
      if (node != peer) {
        coordinator = node;
        break;
      }
    }
  }
  if (coordinator != self()) return;
  promote(peer, cur.epoch);
}

void ClusterServer::handle_handoff(
    NodeId from, const proto::HandoffRequest& r,
    const std::optional<proto::TraceContext>& trace) {
  handoffs_received_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t t0 =
      tracer_ != nullptr && trace ? obs::Tracer::now_us() : 0;
  bool accepted = false;
  // Install only what the current ring places here; anything else is
  // dropped (the sender already forfeited it). install_account refuses
  // duplicates and unknown namespaces on its own.
  if (owner_of(r.ns, r.key) == self()) {
    accepted = table_->install_account(r.ns, r.key, r.balance);
  }
  if (accepted) {
    handoffs_installed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Refused install: the sender already extracted, so this balance just
    // ceased to exist anywhere. The receiver counts it — it is the one
    // node that knows the refusal happened.
    tokens_forfeited_.fetch_add(r.balance, std::memory_order_relaxed);
  }
  if (tracer_ != nullptr && trace) {
    // Receiver leg of the handoff, under the sender's trace id: kError
    // marks a refused install (a forfeit the timeline should show).
    tracer_->record(obs::Stage::kHandoff,
                    accepted ? obs::Decision::kNone : obs::Decision::kError,
                    trace->trace_id, r.key, r.ns, t0,
                    obs::Tracer::now_us() - t0, /*sampled=*/true);
  }
  transport_->send(from, proto::encode(proto::HandoffResponse{r.id, accepted}));
}

void ClusterServer::on_frame(NodeId from, std::vector<std::byte> payload) {
  // Handoff acks flow back to this handler too (the node is the client of
  // its own handoffs); settle the counters and drop other stray responses.
  const std::optional<proto::FrameHeader> head =
      proto::try_parse_header(payload);
  if (head.has_value() && head->is_response) {
    if (head->type == proto::MsgType::kHandoff) {
      try {
        const proto::Response response = proto::decode_response(payload);
        if (const auto* ack = std::get_if<proto::HandoffResponse>(&response);
            ack != nullptr && ack->accepted) {
          handoffs_accepted_.fetch_add(1, std::memory_order_relaxed);
        } else {
          handoffs_rejected_.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const util::IoError&) {
        handoffs_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }

  // Data ops — the hot path — are ownership-checked by streaming the
  // frame's routing keys against one map snapshot, with no decode and no
  // allocation; a batch with any foreign key redirects whole (the client
  // re-splits under the map it refreshes anyway). Owned frames pass
  // through raw and are decoded exactly once, by the inner table server.
  const bool is_data_op =
      head.has_value() && (head->type == proto::MsgType::kAcquire ||
                           head->type == proto::MsgType::kRefund ||
                           head->type == proto::MsgType::kQuery ||
                           head->type == proto::MsgType::kBatchAcquire);
  if (is_data_op) {
    bool owned = true;
    NodeId foreign_owner = kNoNode;
    service::NamespaceId foreign_ns = service::kDefaultNamespace;
    std::uint64_t foreign_key = 0;
    std::uint64_t epoch = 0;
    bool walked;
    // Locked plane only: the ownership walk doubles as delta capture —
    // the shards this frame touches get their dirty accounts flushed to
    // followers right after the op executes. (Engine plane flushes at the
    // workers' drain boundaries instead; at deliver time the ops are still
    // queued, so a post-deliver flush here would capture nothing.) The
    // inline buffer covers every single-key op without touching the heap;
    // only a batch spanning more shards spills.
    std::array<std::size_t, 8> touched_local;
    std::size_t touched_n = 0;
    std::vector<std::size_t> touched_spill;
    {
      std::shared_lock lock(map_mu_);
      epoch = map_.epoch;
      const NodeId self_id = transport_->self();
      const bool capture = engine_ == nullptr && map_.replicas > 0 &&
                           head->type != proto::MsgType::kQuery;
      walked = proto::for_each_data_op_key(
          payload, [&](service::NamespaceId ns, std::uint64_t key) {
            const NodeId owner = ring_.owner(ns, key);
            if (owner != self_id) {
              owned = false;
              foreign_owner = owner;
              foreign_ns = ns;
              foreign_key = key;
              return false;
            }
            if (capture) {
              const std::size_t shard = table_->shard_of(ns, key);
              bool seen = false;
              for (std::size_t i = 0; i < touched_n; ++i)
                seen = seen || touched_local[i] == shard;
              if (!seen && std::find(touched_spill.begin(),
                                     touched_spill.end(),
                                     shard) == touched_spill.end()) {
                if (touched_n < touched_local.size()) {
                  touched_local[touched_n++] = shard;
                } else {
                  touched_spill.push_back(shard);
                }
              }
            }
            return true;
          });
    }
    if (walked && !owned) {
      redirects_sent_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr && head->traced) {
        // The redirect leg of a traced request: the span ties this node's
        // refusal to the same trace id the owning node's spans carry after
        // the client retries. Redirects are rare, so record every one.
        tracer_->record(obs::Stage::kRedirect, obs::Decision::kNone,
                        head->trace_id, foreign_key, foreign_ns,
                        obs::Tracer::now_us(), 0, /*sampled=*/true);
      }
      transport_->send(from, proto::encode(proto::RedirectResponse{
                                 head->id, epoch, foreign_owner}));
      return;
    }
    // Owned — or too malformed to route, in which case the inner server
    // owns the taxonomy (typed error for a valid header, drop for
    // garbage).
    tap_.deliver(from, std::move(payload));
    if (touched_n > 0) {
      // Coalesce: one delta frame per request would double the per-lane
      // frame load, so touched shards accumulate until replication_flush_ops
      // data ops have passed. Everything deferred is replication lag a
      // failover may forfeit — tests asserting the tight per-request bound
      // pin the knob to 1 (which skips the pending set entirely).
      std::vector<std::size_t> flush;
      if (repl_flush_ops_ <= 1) {
        flush.assign(touched_local.begin(),
                     touched_local.begin() +
                         static_cast<std::ptrdiff_t>(touched_n));
        flush.insert(flush.end(), touched_spill.begin(), touched_spill.end());
      } else {
        std::lock_guard lock(repl_pending_mu_);
        auto merge = [this](std::size_t shard) {
          if (std::find(repl_pending_.begin(), repl_pending_.end(), shard) ==
              repl_pending_.end()) {
            repl_pending_.push_back(shard);
          }
        };
        for (std::size_t i = 0; i < touched_n; ++i) merge(touched_local[i]);
        for (const std::size_t shard : touched_spill) merge(shard);
        if (++repl_pending_ops_ >= repl_flush_ops_) {
          flush.swap(repl_pending_);
          repl_pending_ops_ = 0;
        }
      }
      if (!flush.empty()) repl_->flush_shards(flush);
    }
    return;
  }

  proto::Request request;
  std::uint8_t version = proto::kProtocolVersion;
  std::optional<proto::TraceContext> trace;
  try {
    request = proto::decode_request(payload, version, trace);
  } catch (const util::IoError&) {
    // Undecodable admin/cluster frame or garbage: the inner server
    // classifies it.
    tap_.deliver(from, std::move(payload));
    return;
  }

  if (const auto* r = std::get_if<proto::HandoffRequest>(&request)) {
    handle_handoff(from, *r, trace);
    return;
  }
  if (const auto* r = std::get_if<proto::ClusterMapRequest>(&request)) {
    transport_->send(from, proto::encode(proto::ClusterMapResponse{r->id,
                                                                   map()}));
    return;
  }
  if (const auto* r = std::get_if<proto::ApplyMapRequest>(&request)) {
    // A traced broadcast (the promotion path) keeps the coordinator's
    // trace id end to end; an untraced one gets its own adoption trace so
    // its handoffs still stitch.
    const std::int64_t t0 =
        tracer_ != nullptr && trace ? obs::Tracer::now_us() : 0;
    const ApplyOutcome outcome =
        apply_map(r->map, trace ? trace : mint_cluster_trace());
    if (tracer_ != nullptr && trace) {
      // Survivor leg of a promotion: this node's adoption under the
      // coordinator's id (duplicate deliveries record as kError refusals).
      tracer_->record(obs::Stage::kPromote,
                      outcome.accepted ? obs::Decision::kNone
                                       : obs::Decision::kError,
                      trace->trace_id, 0, service::kDefaultNamespace, t0,
                      obs::Tracer::now_us() - t0, /*sampled=*/true);
    }
    transport_->send(from, proto::encode(proto::ApplyMapResponse{
                               r->id, outcome.accepted, outcome.epoch,
                               outcome.handoffs}));
    return;
  }
  if (const auto* r = std::get_if<proto::ReplicateRequest>(&request)) {
    const std::int64_t t0 =
        tracer_ != nullptr && trace ? obs::Tracer::now_us() : 0;
    repl_->on_replicate(from, *r);
    if (tracer_ != nullptr && trace) {
      // Follower leg of a sampled delta flush (`key` = deltas applied).
      tracer_->record(obs::Stage::kReplicate, obs::Decision::kNone,
                      trace->trace_id, r->deltas.size(),
                      service::kDefaultNamespace, t0,
                      obs::Tracer::now_us() - t0, /*sampled=*/true);
    }
    return;
  }
  if (const auto* r = std::get_if<proto::ReplicaAckRequest>(&request)) {
    repl_->on_ack(from, *r);
    return;
  }
  if (const auto* r = std::get_if<proto::PromoteRequest>(&request)) {
    const PromoteOutcome out =
        promote(r->failed, r->epoch, trace ? trace : mint_cluster_trace());
    transport_->send(from, proto::encode(proto::PromoteResponse{
                               r->id, out.accepted, out.epoch, out.installed,
                               out.forfeited}));
    return;
  }

  // Admin ops (configure/info) pass through: they address this node, not
  // a key.
  tap_.deliver(from, std::move(payload));
}

}  // namespace toka::cluster
