#include "cluster/cluster_server.hpp"

#include <algorithm>
#include <optional>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace toka::cluster {

namespace proto = service::protocol;

ClusterServer::ClusterServer(service::AccountTable& table,
                             runtime::Transport& transport, ClusterMap map,
                             service::ServerOptions options)
    : table_(&table),
      transport_(&transport),
      tap_(transport),
      server_(table, tap_, with_node(options, transport)),
      tracer_(options.tracer),
      registry_(options.registry),
      map_(std::move(map)),
      ring_(map_) {
  if (registry_) register_metrics();
  transport_->set_handler([this](NodeId from, std::vector<std::byte> payload) {
    on_frame(from, std::move(payload));
  });
}

ClusterServer::~ClusterServer() {
  // Quiesce the real transport first; the inner server then detaches from
  // the tap, which nothing can deliver through anymore. Only then is it
  // safe to pull the cluster gauges out of the registry.
  transport_->set_handler({});
  if (registry_) {
    for (const std::string& name : metric_names_) registry_->remove(name);
  }
}

void ClusterServer::register_metrics() {
  const auto add = [&](const std::string& name) {
    metric_names_.push_back(name);
    return name;
  };
  registry_->gauge(add("tokad_ring_epoch"),
                   [this] { return static_cast<double>(map_epoch()); });
  registry_->counter_fn(add("tokad_redirects_sent"), [this] {
    return static_cast<double>(
        redirects_sent_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_maps_applied"), [this] {
    return static_cast<double>(maps_applied_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_handoffs_sent"), [this] {
    return static_cast<double>(handoffs_sent_.load(std::memory_order_relaxed));
  });
  registry_->counter_fn(add("tokad_handoffs_installed"), [this] {
    return static_cast<double>(
        handoffs_installed_.load(std::memory_order_relaxed));
  });
}

ClusterMap ClusterServer::map() const {
  std::shared_lock lock(map_mu_);
  return map_;
}

std::uint64_t ClusterServer::map_epoch() const {
  std::shared_lock lock(map_mu_);
  return map_.epoch;
}

NodeId ClusterServer::owner_of(service::NamespaceId ns,
                               std::uint64_t key) const {
  std::shared_lock lock(map_mu_);
  return ring_.owner(ns, key);
}

ApplyOutcome ClusterServer::apply_map(const ClusterMap& map) {
  HashRing ring;
  {
    std::unique_lock lock(map_mu_);
    // Strictly newer only: a re-delivered or reordered map can never roll
    // membership back, so concurrent applies settle on the max epoch.
    if (map.epoch <= map_.epoch) return {false, map_.epoch, 0};
    map_ = map;
    ring_ = HashRing(map_);
    ring = ring_;
  }
  maps_applied_.fetch_add(1, std::memory_order_relaxed);

  // The new ring is already answering (requests for moved keys redirect
  // from here on), so extraction can only see post-install grants: a moved
  // account's balance leaves exactly once. If any of these frames is lost
  // the tokens are forfeited — never resurrected here.
  const NodeId self_id = self();
  const std::vector<service::AccountExport> moved = table_->extract_if(
      [&](service::NamespaceId ns, std::uint64_t key) {
        return ring.owner(ns, key) != self_id;
      });
  std::uint64_t sent = 0;
  for (const service::AccountExport& account : moved) {
    const NodeId target = ring.owner(account.ns, account.key);
    if (target == kNoNode || target == self_id) continue;  // empty ring
    const std::uint64_t id =
        next_handoff_id_.fetch_add(1, std::memory_order_relaxed);
    transport_->send(target,
                     proto::encode(proto::HandoffRequest{
                         id, map.epoch, account.ns, account.key,
                         account.balance}));
    ++sent;
  }
  handoffs_sent_.fetch_add(sent, std::memory_order_relaxed);
  return {true, map.epoch, sent};
}

void ClusterServer::handle_handoff(NodeId from,
                                   const proto::HandoffRequest& r) {
  handoffs_received_.fetch_add(1, std::memory_order_relaxed);
  bool accepted = false;
  // Install only what the current ring places here; anything else is
  // dropped (the sender already forfeited it). install_account refuses
  // duplicates and unknown namespaces on its own.
  if (owner_of(r.ns, r.key) == self()) {
    accepted = table_->install_account(r.ns, r.key, r.balance);
  }
  if (accepted) handoffs_installed_.fetch_add(1, std::memory_order_relaxed);
  transport_->send(from, proto::encode(proto::HandoffResponse{r.id, accepted}));
}

void ClusterServer::on_frame(NodeId from, std::vector<std::byte> payload) {
  // Handoff acks flow back to this handler too (the node is the client of
  // its own handoffs); settle the counters and drop other stray responses.
  const std::optional<proto::FrameHeader> head =
      proto::try_parse_header(payload);
  if (head.has_value() && head->is_response) {
    if (head->type == proto::MsgType::kHandoff) {
      try {
        const proto::Response response = proto::decode_response(payload);
        if (const auto* ack = std::get_if<proto::HandoffResponse>(&response);
            ack != nullptr && ack->accepted) {
          handoffs_accepted_.fetch_add(1, std::memory_order_relaxed);
        } else {
          handoffs_rejected_.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const util::IoError&) {
        handoffs_rejected_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return;
  }

  // Data ops — the hot path — are ownership-checked by streaming the
  // frame's routing keys against one map snapshot, with no decode and no
  // allocation; a batch with any foreign key redirects whole (the client
  // re-splits under the map it refreshes anyway). Owned frames pass
  // through raw and are decoded exactly once, by the inner table server.
  const bool is_data_op =
      head.has_value() && (head->type == proto::MsgType::kAcquire ||
                           head->type == proto::MsgType::kRefund ||
                           head->type == proto::MsgType::kQuery ||
                           head->type == proto::MsgType::kBatchAcquire);
  if (is_data_op) {
    bool owned = true;
    NodeId foreign_owner = kNoNode;
    service::NamespaceId foreign_ns = service::kDefaultNamespace;
    std::uint64_t foreign_key = 0;
    std::uint64_t epoch = 0;
    bool walked;
    {
      std::shared_lock lock(map_mu_);
      epoch = map_.epoch;
      const NodeId self_id = transport_->self();
      walked = proto::for_each_data_op_key(
          payload, [&](service::NamespaceId ns, std::uint64_t key) {
            const NodeId owner = ring_.owner(ns, key);
            if (owner != self_id) {
              owned = false;
              foreign_owner = owner;
              foreign_ns = ns;
              foreign_key = key;
              return false;
            }
            return true;
          });
    }
    if (walked && !owned) {
      redirects_sent_.fetch_add(1, std::memory_order_relaxed);
      if (tracer_ != nullptr && head->traced) {
        // The redirect leg of a traced request: the span ties this node's
        // refusal to the same trace id the owning node's spans carry after
        // the client retries. Redirects are rare, so record every one.
        tracer_->record(obs::Stage::kRedirect, obs::Decision::kNone,
                        head->trace_id, foreign_key, foreign_ns,
                        obs::Tracer::now_us(), 0, /*sampled=*/true);
      }
      transport_->send(from, proto::encode(proto::RedirectResponse{
                                 head->id, epoch, foreign_owner}));
      return;
    }
    // Owned — or too malformed to route, in which case the inner server
    // owns the taxonomy (typed error for a valid header, drop for
    // garbage).
    tap_.deliver(from, std::move(payload));
    return;
  }

  proto::Request request;
  try {
    request = proto::decode_request(payload);
  } catch (const util::IoError&) {
    // Undecodable admin/cluster frame or garbage: the inner server
    // classifies it.
    tap_.deliver(from, std::move(payload));
    return;
  }

  if (const auto* r = std::get_if<proto::HandoffRequest>(&request)) {
    handle_handoff(from, *r);
    return;
  }
  if (const auto* r = std::get_if<proto::ClusterMapRequest>(&request)) {
    transport_->send(from, proto::encode(proto::ClusterMapResponse{r->id,
                                                                   map()}));
    return;
  }
  if (const auto* r = std::get_if<proto::ApplyMapRequest>(&request)) {
    const ApplyOutcome outcome = apply_map(r->map);
    transport_->send(from, proto::encode(proto::ApplyMapResponse{
                               r->id, outcome.accepted, outcome.epoch,
                               outcome.handoffs}));
    return;
  }

  // Admin ops (configure/info) pass through: they address this node, not
  // a key.
  tap_.deliver(from, std::move(payload));
}

}  // namespace toka::cluster
