// One tokad cluster node: a service::Server that only answers for the keys
// it owns.
//
// The wrapper installs itself as the transport's receive handler and
// triages every frame:
//
//   - data ops (acquire/refund/query/batch) whose keys its HashRing places
//     here are forwarded — still as raw frames — to the wrapped
//     service::Server, which executes them against the node's own
//     AccountTable exactly as a standalone tokend would;
//   - data ops for keys it does NOT own get a RedirectResponse carrying
//     the node's map epoch and the key's current owner: redirect-and-retry
//     instead of server-side proxying, so a stale client pays one extra
//     round trip once and then routes correctly, and no node ever holds a
//     request hostage to another node's latency;
//   - ClusterMap answers the node's current membership map; ApplyMap
//     installs a strictly newer one and starts the handoff of every
//     account the new ring moves elsewhere;
//   - Handoff installs a moved account (only if this node owns the key
//     and has no live account for it — otherwise the state is dropped);
//     handoff *responses* arriving back just settle the sent/lost
//     counters.
//
// Handoff is forfeit-on-loss, never-duplicate: the sender extracts the
// account (it stops existing there) before the frame leaves, and the
// receiver installs at most once. A lost frame, an unknown namespace or a
// racing fresh account can only destroy banked tokens — which keeps every
// node's §3.4 audit, and hence the cluster-wide per-key burst bound,
// intact through membership churn (see DESIGN.md, "tokad cluster").
//
// With ClusterMap::replicas > 0 the node additionally runs a
// ReplicationEngine (see replication.hpp): owned accounts stream deltas to
// their ring successors at drain boundaries, kReplicate/kReplicaAck/
// kPromote frames are routed to it, replica installs ride every map
// adoption, and a peer-down notification auto-promotes through the dead
// node's id-order successor. Every balance the cluster drops — refused
// handoffs, unroutable extractions, conservative promotion installs — is
// counted in tokens_forfeited (exported as tokad_tokens_forfeited), so the
// crash-loss bound is observable, not just asserted in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cluster/cluster_map.hpp"
#include "cluster/hash_ring.hpp"
#include "cluster/replication.hpp"
#include "obs/telemetry.hpp"
#include "runtime/transport.hpp"
#include "service/account_table.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/types.hpp"

namespace toka::cluster {

/// Outcome of ApplyMap (the first three fields mirror the wire response
/// body; the replica fields are local accounting).
struct ApplyOutcome {
  bool accepted = false;       ///< false: we already have this epoch or newer
  std::uint64_t epoch = 0;     ///< our epoch after the call
  std::uint64_t handoffs = 0;  ///< accounts extracted and sent away
  std::uint64_t replica_installed = 0;  ///< replicas promoted into the table
  Tokens replica_forfeited = 0;  ///< tokens the conservative install dropped
};

/// Outcome of promote() (mirrors the PromoteResponse body).
struct PromoteOutcome {
  bool accepted = false;        ///< false: stale epoch or unknown dead node
  std::uint64_t epoch = 0;      ///< our epoch after the call
  std::uint64_t installed = 0;  ///< replica accounts installed here
  Tokens forfeited = 0;         ///< tokens dropped by the conservative install
};

class ClusterServer {
 public:
  /// Wraps `table` behind `transport` with `map` as the initial
  /// membership. The table and transport must outlive the server. The
  /// node's identity is transport.self(); it need not appear in `map`
  /// (a drained node redirects everything). `options` is handed to the
  /// wrapped service::Server (telemetry registry + admission valve); with
  /// a registry set, the cluster layer additionally exports the ring
  /// epoch, redirect and handoff counters as "tokad_*" metrics, and
  /// kStats frames answer with the full snapshot (they pass through the
  /// tap like any admin frame — never redirected, never shed).
  ClusterServer(service::AccountTable& table, runtime::Transport& transport,
                ClusterMap map, service::ServerOptions options = {});

  /// Detaches from the transport and waits out in-flight requests.
  ~ClusterServer();

  ClusterServer(const ClusterServer&) = delete;
  ClusterServer& operator=(const ClusterServer&) = delete;

  NodeId self() const { return transport_->self(); }
  ClusterMap map() const;
  std::uint64_t map_epoch() const;

  /// Installs `map` if strictly newer than the current one and hands off
  /// every account the new ring no longer places here. Also reachable over
  /// the wire via ApplyMap; exposed for in-process coordinators and tests.
  /// With replication running, every adoption also installs the replicas
  /// of departed sources that the new ring places here.
  ApplyOutcome apply_map(const ClusterMap& map);

  /// Removes `failed` from membership (strictly-newer epoch), installs
  /// this node's replicas of it, and broadcasts the new map to the other
  /// survivors so they do the same — the failover path. `expected_epoch`
  /// guards a stale coordinator (0 = promote against whatever the current
  /// map is). Idempotent: not accepted if `failed` already left. Also
  /// reachable over the wire via kPromote, and triggered automatically by
  /// the transport's peer-down signal (through the dead node's id-order
  /// successor, so concurrent observers don't race epoch bumps).
  PromoteOutcome promote(NodeId failed, std::uint64_t expected_epoch = 0);

  /// The wrapped per-node server (served/errored/malformed counters).
  const service::Server& inner() const { return server_; }

  // ------------------------------------------------------------ counters

  /// Data requests answered with a RedirectResponse.
  std::uint64_t redirects_sent() const { return redirects_sent_.load(); }
  /// Membership maps adopted (construction's initial map not counted).
  std::uint64_t maps_applied() const { return maps_applied_.load(); }
  /// Accounts extracted here and sent to a new owner.
  std::uint64_t handoffs_sent() const { return handoffs_sent_.load(); }
  /// Handoff acks: the receiver installed the account.
  std::uint64_t handoffs_accepted() const { return handoffs_accepted_.load(); }
  /// Handoff acks: the receiver dropped the state (tokens forfeited).
  std::uint64_t handoffs_rejected() const { return handoffs_rejected_.load(); }
  /// Handoff requests that arrived here.
  std::uint64_t handoffs_received() const { return handoffs_received_.load(); }
  /// Handoff requests that arrived here and were installed.
  std::uint64_t handoffs_installed() const {
    return handoffs_installed_.load();
  }
  /// Tokens this node destroyed: refused handoff installs, extractions
  /// with no routable target, and the balance-above-floor gap (or whole
  /// balance, on refusal) of every replica promotion install.
  Tokens tokens_forfeited() const {
    return tokens_forfeited_.load(std::memory_order_relaxed);
  }
  /// Promotions this node coordinated (accepted promote() calls).
  std::uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  /// The node's replication engine (always present; idle when the map's
  /// replication factor is 0). Exposed for tests and benchmarks.
  const ReplicationEngine& replication() const { return *repl_; }

 private:
  /// The inner service::Server believes this is its transport: sends pass
  /// through to the real one; deliveries happen only when the cluster
  /// layer decides a frame is an owned data op (or an admin frame).
  class Tap final : public runtime::Transport {
   public:
    explicit Tap(runtime::Transport& inner) : inner_(&inner) {}
    NodeId self() const override { return inner_->self(); }
    void send(NodeId to, std::vector<std::byte> payload) override {
      inner_->send(to, std::move(payload));
    }
    void set_handler(Handler handler) override {
      std::unique_lock lock(mu_);
      handler_ = std::move(handler);
    }
    void deliver(NodeId from, std::vector<std::byte> payload) {
      std::shared_lock lock(mu_);
      if (handler_) handler_(from, std::move(payload));
    }

   private:
    runtime::Transport* inner_;
    std::shared_mutex mu_;
    Handler handler_;
  };

  void on_frame(NodeId from, std::vector<std::byte> payload);
  /// Ring placement under the current map; kNoNode on an empty ring.
  NodeId owner_of(service::NamespaceId ns, std::uint64_t key) const;
  void handle_handoff(NodeId from, const service::protocol::HandoffRequest& r,
                      const std::optional<service::protocol::TraceContext>&
                          trace);
  /// Trace-threaded internals behind the public apply_map/promote: the
  /// same context is stamped onto every frame a membership change fans out
  /// (handoffs, the ApplyMap broadcast), so one trace id survives the
  /// whole failover across nodes. Membership changes are rare, so minted
  /// contexts are always sampled.
  ApplyOutcome apply_map(
      const ClusterMap& map,
      const std::optional<service::protocol::TraceContext>& trace);
  PromoteOutcome promote(
      NodeId failed, std::uint64_t expected_epoch,
      const std::optional<service::protocol::TraceContext>& trace);
  std::optional<service::protocol::TraceContext> mint_cluster_trace();
  /// Peer-down reaction: the dead node's id-order successor promotes.
  void on_peer_down(NodeId peer);
  /// Engine-plane drain hook: streams worker `w`'s shards' dirty deltas.
  void flush_worker_shards(std::size_t w);
  void register_metrics();

  /// Fills in ServerOptions::node with transport.self() when unset, so
  /// both layers stamp exported spans with this node's identity.
  static service::ServerOptions with_node(service::ServerOptions options,
                                          runtime::Transport& transport) {
    if (options.node == kNoNode) options.node = transport.self();
    return options;
  }

  service::AccountTable* table_;
  runtime::Transport* transport_;
  Tap tap_;
  service::Server server_;
  obs::Tracer* tracer_ = nullptr;  ///< the inner server's flight recorder
  obs::Registry* registry_;
  service::ShardEngine* engine_ = nullptr;  ///< nullptr in the locked plane
  Tokens repl_headroom_ = 0;
  std::uint32_t repl_flush_ops_ = 1;  ///< locked-plane flush coalescing
  std::unique_ptr<ReplicationEngine> repl_;
  /// Locked-plane coalescing state: shards touched by owned data ops since
  /// the last flush, and how many ops accumulated them.
  std::mutex repl_pending_mu_;
  std::vector<std::size_t> repl_pending_;
  std::uint32_t repl_pending_ops_ = 0;
  /// Shard indices per engine worker (w owns shard s iff s % workers == w);
  /// empty without an engine.
  std::vector<std::vector<std::size_t>> worker_shards_;
  std::vector<std::string> metric_names_;

  mutable std::shared_mutex map_mu_;
  ClusterMap map_;
  HashRing ring_;

  std::atomic<std::uint64_t> next_handoff_id_{1};
  std::atomic<std::uint64_t> redirects_sent_{0};
  std::atomic<std::uint64_t> maps_applied_{0};
  std::atomic<std::uint64_t> handoffs_sent_{0};
  std::atomic<std::uint64_t> handoffs_accepted_{0};
  std::atomic<std::uint64_t> handoffs_rejected_{0};
  std::atomic<std::uint64_t> handoffs_received_{0};
  std::atomic<std::uint64_t> handoffs_installed_{0};
  std::atomic<Tokens> tokens_forfeited_{0};
  std::atomic<std::uint64_t> promotions_{0};
};

}  // namespace toka::cluster
