#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <future>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "service/protocol.hpp"
#include "util/error.hpp"
#include "util/promise.hpp"

namespace toka::cluster {

namespace {

std::exception_ptr closed_error() {
  return std::make_exception_ptr(
      util::IoError("tokad cluster client is shut down"));
}

}  // namespace

/// Shared completion state of one fanned-out batch acquire. `results` is
/// scattered into by index — every index is written by exactly one group's
/// completion, so no lock is needed for the data itself; `outstanding`
/// counts live groups and the last one to finish publishes.
struct BatchState {
  std::vector<service::AcquireResult> results;
  std::atomic<std::size_t> outstanding{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  ClusterClient::Callback<std::vector<service::AcquireResult>> done;
  /// One trace context for the whole logical batch: every subgroup frame
  /// (and every reissue after a redirect/refresh) carries the same id.
  std::optional<service::protocol::TraceContext> trace;

  void fail(std::exception_ptr error) {
    {
      std::lock_guard lock(error_mu);
      if (!first_error) first_error = std::move(error);
    }
    finish_one();
  }

  void finish_one() {
    if (outstanding.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
    std::exception_ptr error;
    {
      std::lock_guard lock(error_mu);
      error = first_error;
    }
    if (error) {
      done({}, std::move(error));
    } else {
      done(std::move(results), nullptr);
    }
  }
};

ClusterClient::ClusterClient(EndpointFactory factory, ClusterMap initial_map,
                             ClusterClientConfig config)
    : factory_(std::move(factory)),
      config_(config),
      seeds_(initial_map.nodes) {
  TOKA_CHECK_MSG(config_.call_timeout_us > 0,
                 "cluster client timeout must be positive");
  TOKA_CHECK_MSG(config_.max_attempts >= 1,
                 "cluster client needs at least one attempt");
  auto route = std::make_shared<Routing>();
  route->ring = HashRing(initial_map);
  route->map = std::move(initial_map);
  routing_ = std::move(route);
}

ClusterClient::~ClusterClient() {
  closed_.store(true, std::memory_order_release);
  // Unregister before any member teardown: a scrape between here and the
  // end of destruction must not call back into a dying client.
  if (registry_) {
    for (const std::string& name : metric_names_) registry_->remove(name);
  }
  // Destroying a per-node client rejects its in-flight calls; those
  // completions run here, see closed_, and surface their errors instead of
  // reissuing. A racing op may still insert a fresh slot behind the swap,
  // so loop until the registry stays empty. Each slot's own mutex waits
  // out any construction still in progress.
  for (;;) {
    std::unordered_map<NodeId, std::shared_ptr<NodeSlot>> slots;
    {
      std::lock_guard lock(mu_);
      slots.swap(clients_);
    }
    if (slots.empty()) break;
    for (auto& [node, slot] : slots) {
      std::unique_ptr<service::Client> client;
      {
        std::lock_guard slot_lock(slot->mu);
        slot->ready.store(nullptr, std::memory_order_release);
        client = std::move(slot->client);
      }
      // Destroyed with no slot lock held: the client's teardown waits out
      // in-flight deliveries, and one of those may be inside client_for.
      client.reset();
    }
  }
}

std::shared_ptr<const ClusterClient::Routing> ClusterClient::routing() const {
  std::lock_guard lock(mu_);
  return routing_;
}

ClusterMap ClusterClient::map() const { return routing()->map; }

void ClusterClient::adopt(ClusterMap map) {
  std::lock_guard lock(mu_);
  if (map.epoch <= routing_->map.epoch) return;
  auto route = std::make_shared<Routing>();
  route->ring = HashRing(map);
  route->map = std::move(map);
  routing_ = std::move(route);
  maps_adopted_.fetch_add(1, std::memory_order_relaxed);
}

service::Client* ClusterClient::client_for(NodeId node) {
  std::shared_ptr<NodeSlot> slot;
  {
    std::lock_guard lock(mu_);
    std::shared_ptr<NodeSlot>& entry = clients_[node];
    if (!entry) entry = std::make_shared<NodeSlot>();
    slot = entry;
  }
  if (service::Client* existing =
          slot->ready.load(std::memory_order_acquire)) {
    return existing;
  }
  // First contact: construct under the slot's own mutex only (see
  // NodeSlot for the lock-ordering story). The closed_ re-check under the
  // lock closes the teardown race: after the destructor has processed a
  // slot (or swapped the registry), closed_ is visible here, so no client
  // can materialize behind the sweep's back.
  std::lock_guard slot_lock(slot->mu);
  if (closed_.load(std::memory_order_acquire)) return nullptr;
  if (!slot->client) {
    slot->client = std::make_unique<service::Client>(factory_(node), node,
                                                     config_.call_timeout_us);
    // The per-node client records the Stage::kClient round-trip spans; the
    // contexts it stamps are the ones this layer mints per logical op.
    if (tracer_ != nullptr) slot->client->set_tracer(tracer_);
    slot->ready.store(slot->client.get(), std::memory_order_release);
  }
  return slot->client.get();
}

std::optional<service::protocol::TraceContext> ClusterClient::mint_trace() {
  if (tracer_ == nullptr) return std::nullopt;
  return service::protocol::TraceContext{tracer_->next_trace_id(),
                                         tracer_->sample_next()};
}

NodeId ClusterClient::refresh_target() {
  const std::shared_ptr<const Routing> route = routing();
  const std::vector<NodeId>& candidates =
      route->map.nodes.empty() ? seeds_ : route->map.nodes;
  if (candidates.empty()) return kNoNode;
  const std::size_t i =
      refresh_cursor_.fetch_add(1, std::memory_order_relaxed);
  return candidates[i % candidates.size()];
}

void ClusterClient::refresh_map_async(NodeId preferred,
                                      std::function<void()> resume) {
  if (closed_.load(std::memory_order_acquire)) {
    resume();
    return;
  }
  // Coalesce: when a node dies with N ops in flight, every one of them
  // fails over to a refresh within the same timeout tick. Only the first
  // puts a fetch on the wire; the rest park their resumes behind it and
  // all continue off that single fetch's result. (A parked redirect loses
  // its `preferred` hint; its reissue redirects again if the coalesced
  // fetch came back stale — correctness is unaffected, only one extra
  // round trip in a rare race.)
  {
    std::lock_guard lock(mu_);
    if (refresh_inflight_) {
      refresh_waiters_.push_back(std::move(resume));
      return;
    }
    refresh_inflight_ = true;
  }
  const NodeId target = preferred != kNoNode ? preferred : refresh_target();
  service::Client* client = target != kNoNode ? client_for(target) : nullptr;
  if (client == nullptr) {
    // No target, or mid-teardown: the next attempt surfaces it.
    resume();
    finish_refresh();
    return;
  }
  map_refreshes_.fetch_add(1, std::memory_order_relaxed);
  client->fetch_cluster_map_async(
      [this, resume = std::move(resume)](ClusterMap m,
                                         std::exception_ptr error) {
        if (!error) adopt(std::move(m));
        // A failed fetch still resumes: the op's next attempt rotates to
        // another member.
        resume();
        finish_refresh();
      },
      config_.call_timeout_us);
}

void ClusterClient::finish_refresh() {
  std::vector<std::function<void()>> waiters;
  {
    std::lock_guard lock(mu_);
    refresh_inflight_ = false;
    waiters.swap(refresh_waiters_);
  }
  // Outside mu_: a waiter's reissue takes mu_ for routing, and may start
  // its own refresh (the flag is already clear, so it won't deadlock on
  // this drain).
  for (std::function<void()>& waiter : waiters) waiter();
}

bool ClusterClient::refresh_map() {
  std::vector<NodeId> candidates = routing()->map.nodes;
  for (const NodeId seed : seeds_) {
    if (std::find(candidates.begin(), candidates.end(), seed) ==
        candidates.end())
      candidates.push_back(seed);
  }
  for (const NodeId node : candidates) {
    service::Client* client = client_for(node);
    if (client == nullptr) return false;  // mid-teardown
    try {
      map_refreshes_.fetch_add(1, std::memory_order_relaxed);
      adopt(client->fetch_cluster_map());
      return true;
    } catch (const util::IoError&) {
      // dead or non-cluster node: try the next one
    }
  }
  return false;
}

void ClusterClient::register_metrics(obs::Registry& registry) {
  registry_ = &registry;
  const auto add = [&](const std::string& name) {
    metric_names_.push_back(name);
    return name;
  };
  registry.counter_fn(add("tokad_client_redirects_followed"), [this] {
    return static_cast<double>(redirects_.load(std::memory_order_relaxed));
  });
  registry.counter_fn(add("tokad_client_io_retries"), [this] {
    return static_cast<double>(io_retries_.load(std::memory_order_relaxed));
  });
  registry.counter_fn(add("tokad_client_maps_adopted"), [this] {
    return static_cast<double>(maps_adopted_.load(std::memory_order_relaxed));
  });
  registry.counter_fn(add("tokad_client_map_refreshes"), [this] {
    return static_cast<double>(
        map_refreshes_.load(std::memory_order_relaxed));
  });
}

// --------------------------------------------------------------- data ops

template <typename Result>
void ClusterClient::run_op(
    service::NamespaceId ns, std::uint64_t key,
    std::function<void(service::Client&, Callback<Result>)> issue,
    Callback<Result> done, int attempt) {
  if (closed_.load(std::memory_order_acquire)) {
    done(Result{}, closed_error());
    return;
  }
  const std::shared_ptr<const Routing> route = routing();
  const NodeId owner = route->ring.owner(ns, key);
  if (owner == kNoNode) {
    // No members in the cached map: refresh and retry, or give up.
    if (attempt >= config_.max_attempts) {
      done(Result{}, std::make_exception_ptr(util::IoError(
                         "tokad: no owner for the key (empty cluster map)")));
      return;
    }
    refresh_map_async(kNoNode, [this, ns, key, issue = std::move(issue),
                                done = std::move(done), attempt]() mutable {
      run_op<Result>(ns, key, std::move(issue), std::move(done), attempt + 1);
    });
    return;
  }
  service::Client* client = client_for(owner);
  if (client == nullptr) {
    done(Result{}, closed_error());
    return;
  }
  auto completion = [this, ns, key, issue, done, attempt, owner](
                        Result result, std::exception_ptr error) mutable {
    if (!error) {
      done(std::move(result), nullptr);
      return;
    }
    if (closed_.load(std::memory_order_acquire) ||
        attempt >= config_.max_attempts) {
      done(Result{}, std::move(error));
      return;
    }
    // Built only on the retry paths: it consumes `issue` and `done`, which
    // the non-retry paths still need intact.
    auto make_resume = [&]() {
      return [this, ns, key, issue = std::move(issue),
              done = std::move(done), attempt]() mutable {
        run_op<Result>(ns, key, std::move(issue), std::move(done),
                       attempt + 1);
      };
    };
    try {
      std::rethrow_exception(error);
    } catch (const service::protocol::RedirectError&) {
      // Our map is behind; the redirecting node has the newer one.
      redirects_.fetch_add(1, std::memory_order_relaxed);
      refresh_map_async(owner, make_resume());
    } catch (const service::protocol::RpcError&) {
      // The cluster answered; the answer is no. Not retryable.
      done(Result{}, std::move(error));
    } catch (const util::IoError&) {
      // Timeout or connection closed: the owner may be gone — learn the
      // new membership from whoever is left, then reroute.
      io_retries_.fetch_add(1, std::memory_order_relaxed);
      refresh_map_async(kNoNode, make_resume());
    } catch (...) {
      done(Result{}, std::move(error));
    }
  };
  issue(*client, std::move(completion));
}

template <typename Result>
Result ClusterClient::run_sync(
    service::NamespaceId ns, std::uint64_t key,
    std::function<void(service::Client&, Callback<Result>)> issue) {
  auto [future, done] = util::promise_pair<Result>();
  run_op<Result>(ns, key, std::move(issue), std::move(done), 1);
  return future.get();
}

// Each wrapper mints the logical op's trace context ONCE, outside the
// issue closure — the closure (and its context copy) is what run_op
// replays on every redirect/refresh retry, so all attempts share one id.

void ClusterClient::acquire_async(service::NamespaceId ns, std::uint64_t key,
                                  Tokens n,
                                  Callback<service::AcquireResult> done) {
  run_op<service::AcquireResult>(
      ns, key,
      [ns, key, n, trace = mint_trace()](
          service::Client& client,
          Callback<service::AcquireResult> completion) {
        client.acquire_async(ns, key, n, std::move(completion),
                             /*timeout_us=*/0, trace ? &*trace : nullptr);
      },
      std::move(done), 1);
}

service::AcquireResult ClusterClient::acquire(service::NamespaceId ns,
                                              std::uint64_t key, Tokens n) {
  return run_sync<service::AcquireResult>(
      ns, key,
      [ns, key, n, trace = mint_trace()](
          service::Client& client,
          Callback<service::AcquireResult> completion) {
        client.acquire_async(ns, key, n, std::move(completion),
                             /*timeout_us=*/0, trace ? &*trace : nullptr);
      });
}

service::RefundResult ClusterClient::refund(service::NamespaceId ns,
                                            std::uint64_t key, Tokens n) {
  return run_sync<service::RefundResult>(
      ns, key,
      [ns, key, n, trace = mint_trace()](
          service::Client& client,
          Callback<service::RefundResult> completion) {
        client.refund_async(ns, key, n, std::move(completion),
                            /*timeout_us=*/0, trace ? &*trace : nullptr);
      });
}

service::QueryResult ClusterClient::query(service::NamespaceId ns,
                                          std::uint64_t key) {
  return run_sync<service::QueryResult>(
      ns, key,
      [ns, key, trace = mint_trace()](
          service::Client& client,
          Callback<service::QueryResult> completion) {
        client.query_async(ns, key, std::move(completion),
                           /*timeout_us=*/0, trace ? &*trace : nullptr);
      });
}

// ------------------------------------------------------------ batch fan-out

void ClusterClient::batch_group_async(service::NamespaceId ns,
                                      std::vector<service::AcquireOp> ops,
                                      std::vector<std::size_t> indices,
                                      std::shared_ptr<BatchState> state,
                                      int attempt) {
  if (closed_.load(std::memory_order_acquire)) {
    state->fail(closed_error());
    return;
  }
  if (attempt > config_.max_attempts) {
    state->fail(std::make_exception_ptr(
        util::IoError("tokad: batch acquire ran out of attempts")));
    return;
  }
  const std::shared_ptr<const Routing> route = routing();
  // Split this group by owner under the current map (on a reissue after a
  // refresh, ownership may have fragmented into several nodes).
  struct Group {
    std::vector<service::AcquireOp> ops;
    std::vector<std::size_t> indices;
  };
  std::unordered_map<NodeId, Group> groups;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Group& group = groups[route->ring.owner(ns, ops[i].key)];
    group.ops.push_back(ops[i]);
    group.indices.push_back(indices[i]);
  }
  // This call holds one outstanding slot; each extra subgroup takes its own.
  if (groups.size() > 1)
    state->outstanding.fetch_add(groups.size() - 1,
                                 std::memory_order_acq_rel);
  for (auto& [owner, group] : groups) {
    if (owner == kNoNode) {
      // No route for these keys: refresh the map and re-run the subgroup.
      refresh_map_async(
          kNoNode, [this, ns, group_ops = std::move(group.ops),
                    group_indices = std::move(group.indices), state,
                    attempt]() mutable {
            batch_group_async(ns, std::move(group_ops),
                              std::move(group_indices), state, attempt + 1);
          });
      continue;
    }
    service::Client* client = client_for(owner);
    if (client == nullptr) {
      state->fail(closed_error());
      continue;
    }
    auto completion = [this, ns, owner, group_ops = group.ops,
                       group_indices = group.indices, state, attempt](
                          std::vector<service::AcquireResult> results,
                          std::exception_ptr error) mutable {
      if (!error) {
        for (std::size_t i = 0; i < group_indices.size(); ++i)
          state->results[group_indices[i]] = results[i];
        state->finish_one();
        return;
      }
      if (closed_.load(std::memory_order_acquire) ||
          attempt >= config_.max_attempts) {
        state->fail(std::move(error));
        return;
      }
      auto make_resume = [&]() {
        return [this, ns, group_ops = std::move(group_ops),
                group_indices = std::move(group_indices), state,
                attempt]() mutable {
          batch_group_async(ns, std::move(group_ops),
                            std::move(group_indices), state, attempt + 1);
        };
      };
      try {
        std::rethrow_exception(error);
      } catch (const service::protocol::RedirectError&) {
        redirects_.fetch_add(1, std::memory_order_relaxed);
        refresh_map_async(owner, make_resume());
      } catch (const service::protocol::RpcError&) {
        state->fail(std::move(error));
      } catch (const util::IoError&) {
        io_retries_.fetch_add(1, std::memory_order_relaxed);
        refresh_map_async(kNoNode, make_resume());
      } catch (...) {
        state->fail(std::move(error));
      }
    };
    client->acquire_batch_async(ns, group.ops, std::move(completion),
                                /*timeout_us=*/0,
                                state->trace ? &*state->trace : nullptr);
  }
}

std::vector<service::AcquireResult> ClusterClient::acquire_batch(
    service::NamespaceId ns, std::span<const service::AcquireOp> ops) {
  if (ops.empty()) return {};
  auto [future, done] =
      util::promise_pair<std::vector<service::AcquireResult>>();
  auto state = std::make_shared<BatchState>();
  state->results.resize(ops.size());
  state->outstanding.store(1, std::memory_order_relaxed);
  state->done = std::move(done);
  state->trace = mint_trace();
  std::vector<service::AcquireOp> all(ops.begin(), ops.end());
  std::vector<std::size_t> indices(ops.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  batch_group_async(ns, std::move(all), std::move(indices), std::move(state),
                    1);
  return future.get();
}

// ------------------------------------------------------------------- admin

std::size_t ClusterClient::configure_namespace_all(
    service::NamespaceId ns, const service::NamespaceConfig& config) {
  const std::vector<NodeId> nodes = routing()->map.nodes;
  std::size_t acks = 0;
  for (const NodeId node : nodes) {
    service::Client* client = client_for(node);
    if (client == nullptr) break;  // mid-teardown
    try {
      client->configure_namespace(ns, config);
      ++acks;
    } catch (const service::protocol::RpcError&) {
      throw;  // invalid config: a caller bug, same on every node
    } catch (const util::IoError&) {
      // dead node: it will be reconfigured when it rejoins
    }
  }
  return acks;
}

namespace {

/// protocol::StatsEntry mirrors obs::Metric field for field; this is the
/// wire → in-memory half (kStats replies feeding merge_snapshots).
obs::Metric to_metric(const service::protocol::StatsEntry& e) {
  obs::Metric m;
  m.name = e.name;
  m.kind = static_cast<obs::Metric::Kind>(e.kind);
  m.value = e.value;
  m.p50 = e.p50;
  m.p90 = e.p90;
  m.p99 = e.p99;
  m.max = e.max;
  m.sum = e.sum;
  m.buckets.reserve(e.buckets.size());
  for (const service::protocol::StatsBucket& b : e.buckets)
    m.buckets.push_back(obs::HistogramBucket{b.index, b.count});
  return m;
}

}  // namespace

ClusterClient::ClusterStats ClusterClient::cluster_stats() {
  const std::vector<NodeId> nodes = routing()->map.nodes;
  ClusterStats out;
  std::vector<std::vector<obs::Metric>> snapshots;
  for (const NodeId node : nodes) {
    service::Client* client = client_for(node);
    if (client == nullptr) break;  // mid-teardown
    try {
      const std::vector<service::protocol::StatsEntry> entries =
          client->stats();
      std::vector<obs::Metric> metrics;
      metrics.reserve(entries.size());
      for (const service::protocol::StatsEntry& e : entries)
        metrics.push_back(to_metric(e));
      snapshots.push_back(metrics);
      out.per_node.emplace_back(node, std::move(metrics));
    } catch (const service::protocol::RpcError&) {
      // v1 or registry-less node: nothing to merge from it
    } catch (const util::IoError&) {
      // dead node: the sweep reports the survivors
    }
  }
  if (out.per_node.empty()) {
    throw util::IoError("cluster stats sweep: no node answered");
  }
  out.merged = obs::merge_snapshots(snapshots);
  return out;
}

std::vector<service::protocol::TraceSpan> ClusterClient::fetch_cluster_traces(
    std::uint64_t trace_id, std::uint32_t max_spans_per_node) {
  const std::vector<NodeId> nodes = routing()->map.nodes;
  std::vector<service::protocol::TraceSpan> out;
  std::size_t answered = 0;
  for (const NodeId node : nodes) {
    service::Client* client = client_for(node);
    if (client == nullptr) break;  // mid-teardown
    try {
      std::vector<service::protocol::TraceSpan> spans =
          client->fetch_traces(max_spans_per_node);
      ++answered;
      for (service::protocol::TraceSpan& s : spans) {
        if (trace_id != 0 && s.trace_id != trace_id) continue;
        out.push_back(s);
      }
    } catch (const service::protocol::RpcError&) {
      // tracerless or v1 node: it contributes no spans
    } catch (const util::IoError&) {
      // dead node: its ring died with it; the survivors' spans remain
    }
  }
  if (answered == 0) {
    throw util::IoError("cluster trace sweep: no node answered");
  }
  // One timeline: every node's spans interleaved by start time. Nodes'
  // steady clocks are not synchronized across real machines — within one
  // process (tests, demos) they are the same clock; across hosts the
  // per-node ordering is exact and the interleave is approximate.
  std::stable_sort(out.begin(), out.end(),
                   [](const service::protocol::TraceSpan& a,
                      const service::protocol::TraceSpan& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::size_t ClusterClient::push_map(const ClusterMap& map) {
  const ClusterMap current = routing()->map;
  // Newcomers first (they must hold the map before handoffs land), then
  // the remaining members, then leavers (so they drain last, towards nodes
  // that already route correctly).
  std::vector<NodeId> targets;
  for (const NodeId node : map.nodes)
    if (!current.contains(node)) targets.push_back(node);
  for (const NodeId node : map.nodes)
    if (current.contains(node)) targets.push_back(node);
  for (const NodeId node : current.nodes)
    if (!map.contains(node)) targets.push_back(node);

  std::size_t acks = 0;
  for (const NodeId node : targets) {
    service::Client* client = client_for(node);
    if (client == nullptr) break;  // mid-teardown
    try {
      client->apply_cluster_map(map);
      ++acks;
    } catch (const util::IoError&) {
      // dead or unreachable: the survivors' maps still converge
    }
  }
  adopt(map);
  return acks;
}

}  // namespace toka::cluster
