#include "cluster/hash_ring.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace toka::cluster {

HashRing::HashRing(std::span<const NodeId> nodes, std::uint32_t vnodes) {
  std::vector<NodeId> unique(nodes.begin(), nodes.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  node_count_ = unique.size();
  if (unique.empty()) return;
  TOKA_CHECK_MSG(vnodes > 0, "a non-empty ring needs vnodes > 0");
  points_.reserve(unique.size() * vnodes);
  for (const NodeId node : unique) {
    // Each node's points come from its own splitmix64 stream, so a node
    // contributes the same points in every map it appears in — the
    // property that makes membership change minimal. The stream is seeded
    // through a full mix of the node id: raw (node+1)*gamma seeds would
    // put consecutive ids on overlapping streams (splitmix64 steps its
    // state by gamma), collapsing most points onto shared positions.
    std::uint64_t seed = static_cast<std::uint64_t>(node) + 1;
    std::uint64_t state = util::splitmix64(seed);
    for (std::uint32_t r = 0; r < vnodes; ++r) {
      points_.emplace_back(util::splitmix64(state), node);
    }
  }
  std::sort(points_.begin(), points_.end());
}

NodeId HashRing::owner_of_point(std::uint64_t point) const {
  if (points_.empty()) return kNoNode;
  // First ring point strictly after the key's hash, wrapping past the top.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), point,
      [](std::uint64_t p, const std::pair<std::uint64_t, NodeId>& entry) {
        return p < entry.first;
      });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

std::vector<NodeId> HashRing::successors_of_point(std::uint64_t point,
                                                  std::size_t k) const {
  std::vector<NodeId> group;
  if (points_.empty()) return group;
  const std::size_t want = std::min(k + 1, node_count_);
  group.reserve(want);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), point,
      [](std::uint64_t p, const std::pair<std::uint64_t, NodeId>& entry) {
        return p < entry.first;
      });
  // Walk forward (wrapping) until `want` distinct nodes are collected. The
  // walk terminates: every node contributes at least one point, so a full
  // lap visits every node id at least once.
  while (group.size() < want) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(group.begin(), group.end(), it->second) == group.end()) {
      group.push_back(it->second);
    }
    ++it;
  }
  return group;
}

std::uint64_t HashRing::key_point(service::NamespaceId ns, std::uint64_t key) {
  std::uint64_t state = service::AccountTable::fold_key(ns, key);
  return util::splitmix64(state);
}

}  // namespace toka::cluster
