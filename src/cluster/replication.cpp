#include "cluster/replication.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace toka::cluster {

namespace proto = service::protocol;

ReplicationEngine::ReplicationEngine(service::AccountTable& table,
                                     runtime::Transport& transport,
                                     ClusterMap map)
    : table_(&table),
      transport_(&transport),
      map_(std::move(map)),
      ring_(map_) {}

std::uint64_t ReplicationEngine::min_acked_locked() const {
  if (lanes_.empty()) return round_;  // nothing in flight
  std::uint64_t acked = UINT64_MAX;
  for (const auto& [node, lane] : lanes_) acked = std::min(acked, lane.acked);
  return acked;
}

void ReplicationEngine::flush_shards(const std::vector<std::size_t>& shards) {
  std::lock_guard flush_lock(flush_mu_);

  std::uint64_t seq;
  std::uint64_t acked;
  std::uint32_t k;
  NodeId self;
  HashRing ring;
  std::uint64_t epoch;
  {
    std::lock_guard lock(mu_);
    k = map_.replicas;
    if (k == 0 || ring_.node_count() <= 1) return;
    seq = round_ + 1;
    acked = min_acked_locked();
    ring = ring_;  // routing snapshot; cheap relative to a frame send
    epoch = map_.epoch;
    self = transport_->self();
  }

  scratch_.clear();
  for (const std::size_t s : shards)
    table_->drain_replica_dirty(s, seq, acked, scratch_);
  if (scratch_.empty()) return;

  // Split the batch per follower: every delta goes to each of its key's
  // successors. Deltas whose key this node no longer owns were captured
  // across a map transition — the new primary streams them, skip.
  std::map<NodeId, std::vector<proto::ReplicaDelta>> per_target;
  for (const service::ReplicaDeltaExport& d : scratch_) {
    const std::vector<NodeId> group = ring.successors(d.ns, d.key, k);
    if (group.empty() || group.front() != self) continue;
    for (std::size_t i = 1; i < group.size(); ++i) {
      per_target[group[i]].push_back(
          proto::ReplicaDelta{d.ns, d.key, d.balance, d.floor});
    }
  }
  if (per_target.empty()) return;

  {
    std::lock_guard lock(mu_);
    round_ = std::max(round_, seq);
    for (const auto& [node, deltas] : per_target) {
      Lane& lane = lanes_[node];
      lane.last_sent = std::max(lane.last_sent, seq);
    }
  }
  // Replicate frames are the cluster's background hum — far too many to
  // trace each — so flush rounds join the tracer's 1-in-N sampled set.
  // A sampled round mints one context shared by every follower frame it
  // fans out; the followers' receive spans stitch to the sender span
  // below under that id.
  std::optional<proto::TraceContext> trace;
  if (tracer_ != nullptr && tracer_->sample_next())
    trace = proto::TraceContext{tracer_->next_trace_id(), true};
  const std::int64_t t_send = trace ? obs::Tracer::now_us() : 0;
  std::uint64_t traced_accounts = 0;
  for (auto& [node, deltas] : per_target) {
    delta_accounts_sent_.fetch_add(deltas.size(), std::memory_order_relaxed);
    if (trace) traced_accounts += deltas.size();
    // Chunk under the frame limit (a drain batch larger than 64k accounts
    // for one follower is theoretical, but the codec enforces the cap).
    std::size_t off = 0;
    while (off < deltas.size()) {
      const std::size_t n =
          std::min(deltas.size() - off, proto::kMaxReplicaDeltas);
      proto::ReplicateRequest frame;
      frame.id = next_frame_id_++;
      frame.epoch = epoch;
      frame.seq = seq;
      frame.deltas.assign(deltas.begin() + static_cast<std::ptrdiff_t>(off),
                          deltas.begin() + static_cast<std::ptrdiff_t>(off + n));
      std::vector<std::byte> wire = proto::encode(frame);
      if (trace) proto::attach_trace_context(wire, *trace);
      transport_->send(node, std::move(wire));
      deltas_sent_.fetch_add(1, std::memory_order_relaxed);
      off += n;
    }
  }
  if (trace) {
    // Sender span for the sampled round (`key` = account deltas emitted).
    tracer_->record(obs::Stage::kReplicate, obs::Decision::kNone,
                    trace->trace_id, traced_accounts,
                    service::kDefaultNamespace, t_send,
                    obs::Tracer::now_us() - t_send, /*sampled=*/true);
  }
}

void ReplicationEngine::on_ack(NodeId from,
                               const proto::ReplicaAckRequest& ack) {
  acks_received_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  auto it = lanes_.find(from);
  if (it == lanes_.end()) return;  // departed (or never a) follower
  it->second.acked = std::max(it->second.acked, ack.seq);
}

void ReplicationEngine::on_replicate(NodeId from,
                                     const proto::ReplicateRequest& r) {
  std::uint64_t ack_seq;
  {
    std::lock_guard lock(store_mu_);
    for (const proto::ReplicaDelta& d : r.deltas) {
      // Absolute deltas, ordered per-pair transport: last write wins.
      store_[ReplicaKey{d.ns, d.key}] = ReplicaState{d.balance, d.floor, from};
    }
    std::uint64_t& high = source_rounds_[from];
    high = std::max(high, r.seq);
    ack_seq = high;
  }
  transport_->send(from,
                   proto::encode(proto::ReplicaAckRequest{r.id, ack_seq}));
}

ReplicaInstallResult ReplicationEngine::on_map_applied(const ClusterMap& map,
                                                       const HashRing& ring) {
  ReplicaInstallResult result;
  const NodeId self = transport_->self();
  {
    std::lock_guard lock(store_mu_);
    for (auto it = store_.begin(); it != store_.end();) {
      const ReplicaKey& key = it->first;
      const ReplicaState& state = it->second;
      if (!map.contains(state.source)) {
        // The primary fell out of membership. If the new ring puts the key
        // here, this node is its promoted owner: install at the floor —
        // the dead primary never granted below it, so this can only
        // under-grant. The balance-floor gap (or the whole balance, if a
        // live account or missing namespace refuses the install) is the
        // failover's forfeit.
        if (!ring.empty() && ring.owner(key.ns, key.key) == self) {
          if (table_->install_account(key.ns, key.key, state.floor)) {
            ++result.installed;
            result.forfeited += state.balance - state.floor;
          } else {
            result.forfeited += state.balance;
          }
        }
        // Not the new owner: drop silently — the owning successor counts
        // the forfeit (or installs), counting it here too would double it.
        it = store_.erase(it);
        continue;
      }
      // Source still alive: keep only what this node still follows under
      // the new topology (dropping a redundant copy forfeits nothing —
      // the primary holds the live balance).
      bool follows = false;
      if (map.replicas > 0) {
        const std::vector<NodeId> group =
            ring.successors(key.ns, key.key, map.replicas);
        follows = !group.empty() && group.front() == state.source &&
                  std::find(group.begin() + 1, group.end(), self) !=
                      group.end();
      }
      if (follows) {
        ++it;
      } else {
        it = store_.erase(it);
      }
    }
    // Sources that left can never stream again; forget their rounds.
    for (auto it = source_rounds_.begin(); it != source_rounds_.end();) {
      if (map.contains(it->first)) {
        ++it;
      } else {
        it = source_rounds_.erase(it);
      }
    }
  }
  {
    std::lock_guard lock(mu_);
    map_ = map;
    ring_ = ring;
    // Departed followers release their lanes — and with them any unacked
    // rounds holding the gate watermark down.
    for (auto it = lanes_.begin(); it != lanes_.end();) {
      if (map.contains(it->first) && it->first != self) {
        ++it;
      } else {
        it = lanes_.erase(it);
      }
    }
  }
  installs_.fetch_add(result.installed, std::memory_order_relaxed);
  install_forfeited_.fetch_add(result.forfeited, std::memory_order_relaxed);
  return result;
}

std::size_t ReplicationEngine::replica_accounts() const {
  std::lock_guard lock(store_mu_);
  return store_.size();
}

std::uint64_t ReplicationEngine::lag_rounds() const {
  std::lock_guard lock(mu_);
  std::uint64_t lag = 0;
  for (const auto& [node, lane] : lanes_) {
    if (lane.last_sent > lane.acked) {
      lag = std::max(lag, lane.last_sent - lane.acked);
    }
  }
  return lag;
}

}  // namespace toka::cluster
